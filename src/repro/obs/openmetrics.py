"""OpenMetrics exposition and the embedded ``--serve-metrics`` server.

Renders a :mod:`repro.obs.metrics` registry snapshot as OpenMetrics text
(the Prometheus exposition format) and serves it over an embedded HTTP
endpoint, so a long ``--workers N --shards M`` run is scrapeable while
in flight:

- ``GET /metrics`` — the registry snapshot, live.  Dotted metric names
  become underscore families with an ``iguard_`` prefix; the per-worker
  counters the parallel executor accumulates
  (``parallel.worker.<pid>.cells``) and per-shard series
  (``shard.<i>.queue_depth``) fold into **labelled families**
  (``iguard_parallel_worker_cells_total{pid="1234"}``), and the
  supervisor's heartbeat channel contributes per-worker liveness gauges.
  Histograms render as cumulative ``le`` buckets derived from the
  registry's power-of-two magnitude buckets.
- ``GET /healthz`` — the run-health watchdog's verdict as JSON: status,
  uptime, active workers, and every SLO finding so far.

:func:`parse_openmetrics` is the inverse of :func:`render_openmetrics`
down to exact float equality (values are rendered with ``repr``), which
is what the scrape-parse round-trip test and the CI ``telemetry`` job
lean on.  Everything is stdlib; the server is a daemon
:class:`~http.server.ThreadingHTTPServer` that dies with the run.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger

#: Family-name prefix of every exposed metric.
PREFIX = "iguard"

#: Content type of the /metrics payload (Prometheus also accepts it).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Registry name patterns that fold into labelled families.
_LABEL_RULES: Tuple[Tuple[re.Pattern, str, str], ...] = (
    (re.compile(r"^parallel\.worker\.(\d+)\.(.+)$"), "parallel.worker.{rest}", "pid"),
    (re.compile(r"^shard\.(\d+)\.(.+)$"), "shard.{rest}", "shard"),
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def family_of(name: str) -> Tuple[str, Dict[str, str]]:
    """Map a registry metric name to ``(family, labels)``.

    ``detector.accesses_checked`` → ``iguard_detector_accesses_checked``;
    ``parallel.worker.417.cells`` →
    ``iguard_parallel_worker_cells`` with ``{"pid": "417"}``.
    """
    labels: Dict[str, str] = {}
    for pattern, template, label in _LABEL_RULES:
        match = pattern.match(name)
        if match:
            labels[label] = match.group(1)
            name = template.format(rest=match.group(2))
            break
    return f"{PREFIX}_{_INVALID_CHARS.sub('_', name)}", labels


def _format_value(value) -> str:
    """Exact round-trip rendering: ints bare, floats via repr."""
    if isinstance(value, bool):  # defensive; registries never store bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _bucket_bound(exponent: int) -> float:
    """The ``le`` upper bound of a power-of-two magnitude bucket.

    :class:`~repro.obs.metrics.Histogram` buckets a value by its binary
    exponent ``k`` (``math.frexp``), i.e. the bucket covers
    ``(2**(k-1), 2**k]`` — so its inclusive upper bound is ``2**k``,
    exactly representable and exactly invertible (:func:`_bound_exponent`).
    """
    return math.ldexp(1.0, max(-1022, min(exponent, 1023)))


def _bound_exponent(bound: float) -> int:
    """Inverse of :func:`_bucket_bound` for exact powers of two.

    ``math.frexp(2**k)`` normalizes to ``(0.5, k + 1)``, hence the -1.
    """
    return math.frexp(bound)[1] - 1


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def snapshot_to_families(snapshot: Dict[str, dict]) -> Dict[str, dict]:
    """Normalize a registry snapshot into exposition families.

    The canonical structure both the renderer and the parser produce::

        {family: {"type": kind, "points": {label_items: point}}}

    where ``label_items`` is a sorted tuple of ``(label, value)`` pairs,
    a counter/gauge point is the number itself and a histogram point is
    ``{"count", "sum", "min", "max", "buckets"}`` with the registry's
    exponent-keyed buckets.  ``parse_openmetrics(render_openmetrics(s))
    == snapshot_to_families(s)`` is the round-trip contract.
    """
    families: Dict[str, dict] = {}
    for name, snap in sorted(snapshot.items()):
        family, labels = family_of(name)
        kind = snap.get("type")
        entry = families.setdefault(family, {"type": kind, "points": {}})
        if entry["type"] != kind:
            raise ValueError(
                f"metric {name!r} folds into family {family!r} as a "
                f"{kind} but the family is a {entry['type']} — pick a "
                f"non-colliding metric name"
            )
        key = tuple(sorted(labels.items()))
        if kind == "histogram":
            entry["points"][key] = {
                "count": snap.get("count", 0),
                "sum": snap.get("sum", 0.0),
                "min": snap.get("min"),
                "max": snap.get("max"),
                "buckets": {
                    str(k): v for k, v in snap.get("buckets", {}).items()
                },
            }
        else:
            entry["points"][key] = snap.get("value", 0)
    return families


def heartbeat_families(workers: List[dict], now: Optional[float] = None) -> Dict[str, dict]:
    """Per-worker liveness gauges derived from the heartbeat channel."""
    now = time.time() if now is None else now
    families: Dict[str, dict] = {}

    def _point(family: str, pid, value) -> None:
        entry = families.setdefault(
            f"{PREFIX}_{family}", {"type": "gauge", "points": {}}
        )
        entry["points"][(("pid", str(pid)),)] = value

    for worker in workers:
        pid = worker.get("pid")
        _point("worker_up", pid, 0 if worker.get("state") == "dead" else 1)
        _point("worker_busy", pid, 1 if worker.get("state") == "running" else 0)
        _point("worker_cells_done", pid, worker.get("cells_done", 0))
        started = worker.get("started")
        if worker.get("state") == "running" and started:
            _point(
                "worker_cell_seconds", pid, round(max(0.0, now - started), 3)
            )
    return families


def render_families(families: Dict[str, dict]) -> str:
    """Render canonical families as OpenMetrics text (with ``# EOF``)."""
    lines: List[str] = []
    for family in sorted(families):
        entry = families[family]
        kind = entry["type"]
        lines.append(f"# TYPE {family} {kind}")
        for key in sorted(entry["points"]):
            labels = dict(key)
            point = entry["points"][key]
            if kind == "counter":
                lines.append(
                    f"{family}_total{_format_labels(labels)} "
                    f"{_format_value(point)}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{family}{_format_labels(labels)} {_format_value(point)}"
                )
            else:  # histogram
                cumulative = 0
                for exp_key in sorted(point["buckets"], key=int):
                    cumulative += point["buckets"][exp_key]
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(
                        _bucket_bound(int(exp_key))
                    )
                    lines.append(
                        f"{family}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{family}_bucket{_format_labels(inf_labels)} "
                    f"{point['count']}"
                )
                lines.append(
                    f"{family}_count{_format_labels(labels)} {point['count']}"
                )
                lines.append(
                    f"{family}_sum{_format_labels(labels)} "
                    f"{_format_value(point['sum'])}"
                )
                # Empty histograms expose no min/max (absent, never NaN).
                if point.get("min") is not None:
                    lines.append(
                        f"{family}_min{_format_labels(labels)} "
                        f"{_format_value(point['min'])}"
                    )
                if point.get("max") is not None:
                    lines.append(
                        f"{family}_max{_format_labels(labels)} "
                        f"{_format_value(point['max'])}"
                    )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_openmetrics(
    snapshot: Dict[str, dict],
    heartbeats: Optional[List[dict]] = None,
) -> str:
    """Registry snapshot (+ optional heartbeat channel) → OpenMetrics text."""
    families = snapshot_to_families(snapshot)
    if heartbeats:
        families.update(heartbeat_families(heartbeats))
    return render_families(families)


# ---------------------------------------------------------------------------
# Parsing (the scrape side of the round trip)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+"
    r"(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _parse_number(text: str) -> float:
    value = float(text)
    if value.is_integer() and "." not in text and "e" not in text.lower():
        return int(value)
    return value


def parse_openmetrics(text: str) -> Dict[str, dict]:
    """Parse OpenMetrics text back into exposition families.

    Inverse of :func:`render_families` for the families this module
    emits; raises ``ValueError`` on malformed lines, a missing ``# EOF``
    terminator, or samples without a preceding ``# TYPE``.
    """
    families: Dict[str, dict] = {}
    types: Dict[str, str] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, family, kind = line.split(None, 3)
            except ValueError:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            types[family] = kind
            families.setdefault(family, {"type": kind, "points": {}})
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments are legal noise
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name = match.group("name")
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        value_text = match.group("value")

        family, suffix = _family_suffix(name, types)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        kind = types[family]
        entry = families[family]
        if kind == "histogram":
            le = labels.pop("le", None)
            key = tuple(sorted(labels.items()))
            point = entry["points"].setdefault(
                key,
                {"count": 0, "sum": 0.0, "min": None, "max": None,
                 "buckets": {}, "_cumulative": []},
            )
            if suffix == "bucket":
                if le is None:
                    raise ValueError(f"line {lineno}: bucket without le")
                if le != "+Inf":
                    point["_cumulative"].append(
                        (_bound_exponent(float(le)), int(value_text))
                    )
            elif suffix == "count":
                point["count"] = int(value_text)
            elif suffix == "sum":
                point["sum"] = _parse_number(value_text)
            elif suffix == "min":
                point["min"] = _parse_number(value_text)
            elif suffix == "max":
                point["max"] = _parse_number(value_text)
            else:
                raise ValueError(
                    f"line {lineno}: unknown histogram sample {name!r}"
                )
        else:
            if kind == "counter" and suffix != "total":
                raise ValueError(
                    f"line {lineno}: counter sample {name!r} missing _total"
                )
            key = tuple(sorted(labels.items()))
            entry["points"][key] = _parse_number(value_text)
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    for entry in families.values():
        if entry["type"] != "histogram":
            continue
        for point in entry["points"].values():
            cumulative = sorted(point.pop("_cumulative", []))
            previous = 0
            buckets: Dict[str, int] = {}
            for exponent, running in cumulative:
                delta = running - previous
                previous = running
                if delta:
                    buckets[str(exponent)] = delta
            point["buckets"] = buckets
    return families


def _family_suffix(
    name: str, types: Dict[str, str]
) -> Tuple[Optional[str], Optional[str]]:
    """Resolve a sample name to its declared family and sample suffix."""
    for suffix in ("total", "bucket", "count", "sum", "min", "max"):
        tail = f"_{suffix}"
        if name.endswith(tail) and name[: -len(tail)] in types:
            return name[: -len(tail)], suffix
    if name in types:
        return name, None
    return None, None


def validate_openmetrics(text: str) -> List[str]:
    """Parse-validate exposition text; returns error strings (empty = ok)."""
    try:
        families = parse_openmetrics(text)
    except ValueError as exc:
        return [str(exc)]
    errors: List[str] = []
    for family, entry in families.items():
        if entry["type"] == "histogram":
            for labels, point in entry["points"].items():
                in_buckets = sum(point["buckets"].values())
                if in_buckets > point["count"]:
                    errors.append(
                        f"{family}{dict(labels)}: bucket total {in_buckets} "
                        f"exceeds count {point['count']}"
                    )
    return errors


# ---------------------------------------------------------------------------
# The embedded scrape server
# ---------------------------------------------------------------------------


class MetricsServer:
    """Daemon HTTP server exposing ``/metrics`` and ``/healthz``.

    ``health_provider`` returns the ``/healthz`` JSON payload (the
    watchdog supplies it); ``heartbeats_provider`` returns the worker
    list merged into ``/metrics`` as per-worker gauges.  Binding port 0
    picks a free port (the bound ``port`` attribute is updated), which
    keeps the tests parallel-safe.
    """

    def __init__(
        self,
        port: int,
        host: str = "0.0.0.0",
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        health_provider: Optional[Callable[[], dict]] = None,
        heartbeats_provider: Optional[Callable[[], List[dict]]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = registry or obs_metrics.get_registry()
        self.health_provider = health_provider
        self.heartbeats_provider = heartbeats_provider
        self.started_at: Optional[float] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- request handling ----------------------------------------------

    def _metrics_text(self) -> str:
        heartbeats = (
            self.heartbeats_provider() if self.heartbeats_provider else None
        )
        return render_openmetrics(self.registry.snapshot(), heartbeats)

    def _health_payload(self) -> dict:
        payload = {
            "status": "ok",
            "uptime_seconds": round(
                time.time() - self.started_at, 3
            ) if self.started_at else 0.0,
        }
        if self.heartbeats_provider is not None:
            payload["workers"] = self.heartbeats_provider()
        if self.health_provider is not None:
            payload.update(self.health_provider())
        return payload

    def _make_handler(self):
        server = self
        logger = get_logger("serve")

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.split("?")[0] == "/metrics":
                    body = server._metrics_text().encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif self.path.split("?")[0] == "/healthz":
                    body = (
                        json.dumps(
                            server._health_payload(), sort_keys=True
                        ).encode("utf-8")
                        + b"\n"
                    )
                    self._reply(200, "application/json; charset=utf-8", body)
                else:
                    self._reply(
                        404, "text/plain; charset=utf-8", b"not found\n"
                    )

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):  # diagnostics, not stdout
                logger.debug("scrape %s", fmt % args)

        return Handler

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        self._httpd = ThreadingHTTPServer(
            (self.host, self.port), self._make_handler()
        )
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="iguard-metrics-server",
            daemon=True,
        )
        self._thread.start()
        get_logger("serve").info(
            "serving /metrics and /healthz on http://%s:%d",
            self.host, self.port,
        )
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
