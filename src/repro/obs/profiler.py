"""Per-phase perf attribution: a thread-based sampling profiler.

A low-overhead statistical profiler for answering *where does bench time
go* — decode, routing, checks, merge — without instrumenting the hot
path.  A daemon thread wakes on a fixed interval, walks every Python
thread's stack via :func:`sys._current_frames`, and buckets the sample
under the **phase** the sampled thread is currently inside.  Phases are
the same boundaries the span tracer records: :func:`phase` both opens a
profiler scope and (when tracing is on) emits the matching complete span
to :data:`repro.obs.spans.TRACER`, so flamegraphs and Perfetto timelines
agree on what a "phase" is.

Outputs:

- :meth:`SamplingProfiler.collapsed` — collapsed-stack lines
  (``phase;outer;inner N``), the input format of Brendan Gregg's
  ``flamegraph.pl`` and of speedscope's "collapsed" importer.
- :meth:`SamplingProfiler.attribution` — the per-phase self-time table
  wired into ``bench`` (samples, estimated seconds, share), which lands
  in ``BENCH_*.json`` under ``"attribution"``.

Signal-based profiling (``SIGPROF``/``setitimer``) would sample C code
too, but only works on the main thread of a Unix process; the
wall-clock thread sampler works for the multi-threaded bench drivers
and on every platform, which is the right trade for a pure-Python
detector where the interpreter *is* the workload.  Like the rest of
:mod:`repro.obs`, the profiler is a pure reader: nothing in the
detection path knows it exists, and when no profiler is active
:func:`phase` costs one module-global test.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.obs import spans as obs_spans

#: Default sampling interval: 5 ms ≈ 200 Hz, <2% overhead on the bench
#: workloads while still resolving phases tens of milliseconds long.
DEFAULT_INTERVAL = 0.005

#: Frames from these modules are scaffolding, not workload; they are
#: trimmed from the *top* of collapsed stacks (the sampler loop itself,
#: threading plumbing).
_SCAFFOLD_MODULES = ("repro/obs/profiler", "threading")


class SamplingProfiler:
    """Sample thread stacks on an interval, attributed to phases.

    One profiler may be active per process (:func:`start_profiler`); the
    phase stack is tracked per thread, so concurrent bench stages
    attribute correctly.  ``max_depth`` bounds collapsed-stack length.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        max_depth: int = 24,
    ) -> None:
        self.interval = max(0.001, float(interval))
        self.max_depth = max_depth
        self.samples = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._stacks: Counter = Counter()  # collapsed line -> hits
        self._phase_hits: Counter = Counter()  # phase -> hits
        self._phases: Dict[int, List[str]] = {}  # thread id -> phase stack
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- phase scoping ---------------------------------------------------

    def push_phase(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._phases.setdefault(ident, []).append(name)

    def pop_phase(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            stack = self._phases.get(ident)
            if stack:
                stack.pop()
            if not stack:
                self._phases.pop(ident, None)

    def current_phase(self, ident: Optional[int] = None) -> str:
        ident = threading.get_ident() if ident is None else ident
        with self._lock:
            stack = self._phases.get(ident)
            return stack[-1] if stack else "(unattributed)"

    # -- sampling --------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self.started_at = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="iguard-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.stopped_at = time.perf_counter()
        return self

    def _loop(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self.sample_once(skip={own_ident})

    def sample_once(self, skip: Optional[set] = None) -> int:
        """Take one sample of every live thread; returns threads sampled.

        Public so tests can drive deterministic sample counts without
        racing the wall clock.
        """
        skip = skip or set()
        frames = sys._current_frames()
        sampled = 0
        with self._lock:
            phases = {
                ident: stack[-1]
                for ident, stack in self._phases.items()
                if stack
            }
        rows: List[Tuple[str, str]] = []
        for ident, frame in frames.items():
            if ident in skip:
                continue
            phase_name = phases.get(ident)
            if phase_name is None:
                continue  # only phase-scoped threads are attributed
            stack = self._walk(frame)
            if stack is None:
                continue
            rows.append((phase_name, ";".join([phase_name] + stack)))
            sampled += 1
        if rows:
            with self._lock:
                self.samples += 1
                for phase_name, line in rows:
                    self._phase_hits[phase_name] += 1
                    self._stacks[line] += 1
        return sampled

    def _walk(self, frame) -> Optional[List[str]]:
        """Frame chain → outermost-first frame names, scaffolding trimmed."""
        names: List[str] = []
        while frame is not None and len(names) < self.max_depth:
            code = frame.f_code
            filename = code.co_filename.replace("\\", "/")
            if any(mod in filename for mod in _SCAFFOLD_MODULES):
                return None if not names else names[::-1]
            names.append(code.co_name)
            frame = frame.f_back
        return names[::-1] if names else None

    # -- output ----------------------------------------------------------

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines, ``phase;outer;...;inner count``."""
        with self._lock:
            return [
                f"{line} {hits}"
                for line, hits in sorted(self._stacks.items())
            ]

    def write_collapsed(self, path) -> int:
        lines = self.collapsed()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def attribution(self) -> dict:
        """The per-phase self-time table for ``BENCH_*.json``.

        Seconds are estimated as ``hits * interval`` — statistically
        unbiased for a fixed-rate sampler; ``share`` is the phase's
        fraction of all attributed samples.
        """
        with self._lock:
            hits = dict(self._phase_hits)
            total = sum(hits.values())
            wall = (
                (self.stopped_at or time.perf_counter())
                - (self.started_at or 0.0)
                if self.started_at is not None
                else 0.0
            )
        phases = {
            name: {
                "samples": count,
                "seconds": round(count * self.interval, 6),
                "share": round(count / total, 4) if total else 0.0,
            }
            for name, count in sorted(hits.items())
        }
        return {
            "interval_s": self.interval,
            "samples": total,
            "wall_seconds": round(wall, 6),
            "phases": phases,
        }


# ---------------------------------------------------------------------------
# The process-wide profiler and span-aligned phase scoping.
# ---------------------------------------------------------------------------

_PROFILER: Optional[SamplingProfiler] = None


def active_profiler() -> Optional[SamplingProfiler]:
    return _PROFILER


def start_profiler(interval: float = DEFAULT_INTERVAL) -> SamplingProfiler:
    """Start (or return) the process-wide sampling profiler."""
    global _PROFILER
    if _PROFILER is None:
        _PROFILER = SamplingProfiler(interval=interval)
        _PROFILER.start()
    return _PROFILER


def stop_profiler() -> Optional[SamplingProfiler]:
    """Stop and detach the process-wide profiler; returns it for export."""
    global _PROFILER
    profiler, _PROFILER = _PROFILER, None
    if profiler is not None:
        profiler.stop()
    return profiler


@contextmanager
def phase(name: str, cat: str = "bench"):
    """Scope a profiler phase, mirrored as a span when tracing is on.

    With no active profiler and tracing off this is one global test and
    one attribute load — cheap enough for bench stage boundaries, which
    is its intended granularity (not per event).
    """
    profiler = _PROFILER
    tracer = obs_spans.TRACER
    start_us = obs_spans.now_us() if tracer.enabled else 0.0
    if profiler is not None:
        profiler.push_phase(name)
    try:
        yield
    finally:
        if profiler is not None:
            profiler.pop_phase()
        if tracer.enabled:
            tracer.add_complete(
                name, start_us, obs_spans.now_us() - start_us, cat=cat
            )
