"""Tests for the deterministic scheduler RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import SplitMix64


class TestSplitMix64:
    def test_deterministic(self):
        a, b = SplitMix64(7), SplitMix64(7)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert SplitMix64(1).next_u64() != SplitMix64(2).next_u64()

    def test_randint_range(self):
        rng = SplitMix64(3)
        for _ in range(100):
            assert 0 <= rng.randint(7) < 7

    def test_randint_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randint(0)

    def test_random_in_unit_interval(self):
        rng = SplitMix64(5)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_choice(self):
        rng = SplitMix64(9)
        seq = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(seq) in seq

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(11)
        data = list(range(32))
        shuffled = list(data)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == data

    def test_shuffle_changes_order(self):
        rng = SplitMix64(13)
        data = list(range(64))
        shuffled = list(data)
        rng.shuffle(shuffled)
        assert shuffled != data

    def test_fork_independent(self):
        rng = SplitMix64(1)
        fork_a = rng.fork(1)
        fork_b = rng.fork(2)
        assert fork_a.next_u64() != fork_b.next_u64()

    def test_fork_deterministic(self):
        assert SplitMix64(1).fork(5).next_u64() == SplitMix64(1).fork(5).next_u64()

    @given(st.integers(0, (1 << 64) - 1), st.integers(1, 1000))
    def test_randint_bounds_property(self, seed, bound):
        assert 0 <= SplitMix64(seed).randint(bound) < bound

    def test_randint_covers_values(self):
        rng = SplitMix64(17)
        seen = {rng.randint(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}
