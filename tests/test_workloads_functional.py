"""Functional checks: the workloads compute real results, not just events.

The race-free workloads carry internal asserts (host-side verification of
their algorithmic output); these tests run them natively and also verify a
few outputs explicitly.
"""

import pytest

from repro.workloads import racefree_workloads, get_workload, run_workload
from repro.workloads.base import SIM_GPU
from repro.gpu.device import Device


@pytest.mark.parametrize("workload", racefree_workloads(), ids=lambda w: w.name)
def test_runs_natively_with_internal_asserts(workload):
    # Each driver raises AssertionError on a wrong algorithmic result.
    result = run_workload(workload, None, seeds=(1,))
    assert result.status == "ok"
    assert result.overhead == pytest.approx(1.0)


class TestSpecificOutputs:
    def test_b_reduce_sums(self):
        dev = Device(SIM_GPU)
        get_workload("b_reduce").run(dev, seed=2)  # internal assert checks sums

    def test_d_reduce_total(self):
        dev = Device(SIM_GPU)
        get_workload("d_reduce").run(dev, seed=3)

    def test_d_radix_sort_orders(self):
        dev = Device(SIM_GPU)
        get_workload("d_radix_sort").run(dev, seed=4)

    def test_nn_finds_minimum(self):
        dev = Device(SIM_GPU)
        get_workload("nn").run(dev, seed=5)

    def test_rule110_evolves(self):
        dev = Device(SIM_GPU)
        get_workload("rule-110").run(dev, seed=1)
        cells = next(a for a in dev.memory.allocations() if a.name == "cells")
        values = [dev.memory.host_read(cells.base + 4 * i) for i in range(32)]
        # A single seeded 1 in each 16-cell ring spreads under rule 110.
        assert sum(values[:16]) > 1
        assert sum(values[16:]) > 1

    def test_interac_conserves_energy(self):
        # Transactional transfers conserve the total (locking works).
        dev = Device(SIM_GPU)
        get_workload("interac").run(dev, seed=2)
        entities = next(a for a in dev.memory.allocations() if a.name == "entities")
        values = [dev.memory.host_read(entities.base + 4 * i) for i in range(24)]
        assert sum(values) == 24 * 100

    def test_shocbfs_visits_neighbours(self):
        dev = Device(SIM_GPU)
        get_workload("shocbfs").run(dev, seed=1)
        visited = next(a for a in dev.memory.allocations() if a.name == "visited")
        marks = [dev.memory.host_read(visited.base + 4 * i) for i in range(24)]
        assert sum(marks) > 0

    def test_kmeans_counts_all_points(self):
        dev = Device(SIM_GPU)
        get_workload("kmeans").run(dev, seed=1)
        counts = next(a for a in dev.memory.allocations() if a.name == "counts")
        total = sum(dev.memory.host_read(counts.base + 4 * i) for i in range(4))
        assert total == 32  # every point assigned exactly once
