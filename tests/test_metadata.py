"""Tests for the Figure 4 memory-metadata layout."""

from hypothesis import given, strategies as st

from repro.core.metadata import (
    ACCESSOR_WORD,
    BLK_BAR_BITS,
    BLK_FENCE_BITS,
    DEV_FENCE_BITS,
    TAG_BITS,
    WARP_BAR_BITS,
    WRITER_WORD,
    MetadataEntry,
    MetadataTable,
)


class TestLayout:
    """The bit positions printed in Figure 4."""

    def test_accessor_field_positions(self):
        f = ACCESSOR_WORD.field
        assert (f("Tag").hi, f("Tag").lo) == (63, 54)
        assert (f("WarpID").hi, f("WarpID").lo) == (45, 31)
        assert (f("ThreadID").hi, f("ThreadID").lo) == (30, 26)
        assert (f("DevFenceID").hi, f("DevFenceID").lo) == (25, 20)
        assert (f("BlkFenceID").hi, f("BlkFenceID").lo) == (19, 14)
        assert (f("BlkBarID").hi, f("BlkBarID").lo) == (13, 6)
        assert (f("WarpBarID").hi, f("WarpBarID").lo) == (5, 0)

    def test_flag_bits_inside_53_48(self):
        for name in ("Valid", "Modified", "Atomic", "Scope", "DevShared", "BlkShared"):
            field = ACCESSOR_WORD.field(name)
            assert field.width == 1
            assert 48 <= field.lo <= 53

    def test_writer_locks_position(self):
        f = WRITER_WORD.field("Locks")
        assert (f.hi, f.lo) == (63, 48)

    def test_counter_widths(self):
        # 6-bit fences, 8-bit block barrier, 6-bit warp barrier (6.7
        # discusses exactly these widths wrapping).
        assert DEV_FENCE_BITS == 6
        assert BLK_FENCE_BITS == 6
        assert BLK_BAR_BITS == 8
        assert WARP_BAR_BITS == 6
        assert TAG_BITS == 10

    def test_entry_is_16_bytes(self):
        # Two 64-bit words: the paper's 16-byte entry (4x overhead per
        # 4-byte granule).
        table = MetadataTable()
        assert table.entry_bytes == 16


class TestMetadataEntry:
    def test_fresh_entry_invalid(self):
        assert not MetadataEntry().valid

    def test_set_accessor_validates(self):
        e = MetadataEntry()
        e.set_accessor(tag=5, warp_id=3, lane=2, dev_fence=1, blk_fence=0,
                       blk_bar=7, warp_bar=4)
        assert e.valid
        view = e.last_accessor
        assert view.warp_id == 3
        assert view.lane == 2
        assert view.dev_fence == 1
        assert view.blk_bar == 7
        assert view.warp_bar == 4
        assert e.tag == 5

    def test_set_writer(self):
        e = MetadataEntry()
        e.set_writer(warp_id=9, lane=1, dev_fence=2, blk_fence=3,
                     blk_bar=4, warp_bar=5, locks=0xABCD)
        w = e.last_writer
        assert w.warp_id == 9
        assert w.locks == 0xABCD

    def test_flags(self):
        e = MetadataEntry()
        for flag in ("Modified", "Atomic", "Scope", "DevShared", "BlkShared"):
            e.set_flag(flag, True)
        assert e.modified and e.atomic and e.scope_is_block
        assert e.dev_shared and e.blk_shared
        e.set_flag("Atomic", False)
        assert not e.atomic

    def test_accessor_update_preserves_flags(self):
        e = MetadataEntry()
        e.set_flag("Modified", True)
        e.set_accessor(tag=1, warp_id=1, lane=1, dev_fence=0, blk_fence=0,
                       blk_bar=0, warp_bar=0)
        assert e.modified

    def test_counter_wraparound(self):
        # Storing counter value 256 into the 8-bit BlkBarID aliases 0 —
        # the 6.7 false-positive/negative window.
        e = MetadataEntry()
        e.set_accessor(tag=0, warp_id=0, lane=0, dev_fence=0, blk_fence=0,
                       blk_bar=256, warp_bar=64)
        assert e.last_accessor.blk_bar == 0
        assert e.last_accessor.warp_bar == 0

    def test_block_derivation(self):
        e = MetadataEntry()
        e.set_accessor(tag=0, warp_id=5, lane=0, dev_fence=0, blk_fence=0,
                       blk_bar=0, warp_bar=0)
        assert e.last_accessor.block_id(warps_per_block=2) == 2

    @given(
        warp=st.integers(0, (1 << 15) - 1),
        lane=st.integers(0, 31),
        dev=st.integers(0, 63),
        blk=st.integers(0, 63),
        bar=st.integers(0, 255),
        wbar=st.integers(0, 63),
    )
    def test_accessor_roundtrip_property(self, warp, lane, dev, blk, bar, wbar):
        e = MetadataEntry()
        e.set_accessor(tag=0, warp_id=warp, lane=lane, dev_fence=dev,
                       blk_fence=blk, blk_bar=bar, warp_bar=wbar)
        v = e.last_accessor
        assert (v.warp_id, v.lane, v.dev_fence, v.blk_fence, v.blk_bar,
                v.warp_bar) == (warp, lane, dev, blk, bar, wbar)


class TestMetadataTable:
    def test_granularity(self):
        t = MetadataTable(granularity_bytes=4)
        assert t.granule_of(0x1000) == t.granule_of(0x1003)
        assert t.granule_of(0x1000) != t.granule_of(0x1004)

    def test_lookup_creates(self):
        t = MetadataTable()
        e = t.lookup(0x1000)
        assert not e.valid
        assert len(t) == 1

    def test_lookup_returns_same_entry(self):
        t = MetadataTable()
        assert t.lookup(0x1000) is t.lookup(0x1002)

    def test_peek_does_not_create(self):
        t = MetadataTable()
        assert t.peek(0x1000) is None
        assert len(t) == 0

    def test_clear(self):
        t = MetadataTable()
        t.lookup(0x1000)
        t.clear()
        assert len(t) == 0

    def test_shadow_bytes(self):
        t = MetadataTable()
        t.lookup(0x1000)
        t.lookup(0x2000)
        assert t.shadow_bytes == 32  # 2 entries x 16 bytes

    def test_tag_of_is_narrow(self):
        t = MetadataTable()
        assert 0 <= t.tag_of(0xFFFFFFFF) < (1 << TAG_BITS)
