"""The event bus, sink adapters, and multi-detector fan-out."""

import pytest

from repro.baselines import Barracuda
from repro.core import IGuard
from repro.engine import EventBus, ToolSink, run_workload_fanout
from repro.errors import UnsupportedFeatureError
from repro.gpu.device import Device
from repro.gpu.instructions import store
from repro.instrument.nvbit import Tool
from repro.workloads import get_workload, run_workload
from repro.workloads.base import SIM_GPU


class Recorder(Tool):
    """Counts every callback, including the kernel-end record."""

    name = "recorder"

    def __init__(self):
        self.counts = {
            "attach": 0, "alloc": 0, "begin": 0, "memory": 0,
            "sync": 0, "end": 0, "timeout": 0, "kernel_end": 0,
        }

    def attach(self, device):
        self.counts["attach"] += 1

    def on_alloc(self, allocation):
        self.counts["alloc"] += 1

    def on_launch_begin(self, launch):
        self.counts["begin"] += 1

    def on_memory(self, event, launch):
        self.counts["memory"] += 1

    def on_sync(self, event, launch):
        self.counts["sync"] += 1

    def on_launch_end(self, launch):
        self.counts["end"] += 1

    def on_timeout(self, launch):
        self.counts["timeout"] += 1

    def on_kernel_end(self, run, launch):
        self.counts["kernel_end"] += 1


class MinimalSink:
    """Only the classic seven callbacks — no on_kernel_end, no attach need."""

    def __init__(self):
        self.seen = []

    def attach(self, device):
        self.seen.append("attach")

    def on_alloc(self, allocation):
        self.seen.append("alloc")

    def on_launch_begin(self, launch):
        self.seen.append("begin")

    def on_memory(self, event, launch):
        self.seen.append("memory")

    def on_sync(self, event, launch):
        self.seen.append("sync")

    def on_launch_end(self, launch):
        self.seen.append("end")

    def on_timeout(self, launch):
        self.seen.append("timeout")


def _small_kernel(ctx, arr):
    yield store(arr, ctx.tid, 1)


class TestEventBus:
    def test_device_tools_alias_the_bus_sinks(self):
        device = Device(SIM_GPU)
        assert device.tools is device.bus.sinks
        tool = Recorder()
        device.tools.append(tool)  # legacy direct append still dispatches
        device.alloc("a", 4)
        assert tool.counts["alloc"] == 1

    def test_publish_order_is_registration_order(self):
        bus = EventBus()
        order = []
        for tag in ("first", "second"):
            sink = MinimalSink()
            sink.on_alloc = lambda allocation, tag=tag: order.append(tag)
            bus.add_sink(sink)
        bus.publish_alloc(object())
        assert order == ["first", "second"]

    def test_kernel_end_published_and_optional(self):
        device = Device(SIM_GPU)
        recorder = device.add_tool(Recorder())
        minimal = device.add_sink(MinimalSink())
        a = device.alloc("a", 4)
        device.launch(_small_kernel, grid_dim=1, block_dim=4, args=(a,))
        assert recorder.counts["kernel_end"] == 1
        assert recorder.counts["begin"] == 1
        # the minimal sink saw everything except the record it lacks
        assert minimal.seen == ["attach", "alloc", "begin"] + ["memory"] * 4 + ["end"]

    def test_remove_sink_stops_delivery(self):
        device = Device(SIM_GPU)
        tool = device.add_tool(Recorder())
        device.bus.remove_sink(tool)
        device.alloc("a", 4)
        assert tool.counts["alloc"] == 0


class TestToolSink:
    def test_failure_is_absorbed_and_recorded(self):
        class Fussy(Tool):
            name = "fussy"

            def on_memory(self, event, launch):
                raise UnsupportedFeatureError("no can do")

        device = Device(SIM_GPU)
        fussy = device.add_sink(ToolSink(Fussy()))
        healthy = device.add_sink(ToolSink(Recorder()))
        a = device.alloc("a", 4)
        device.launch(_small_kernel, grid_dim=1, block_dim=4, args=(a,))
        assert fussy.failure == ("unsupported", "no can do")
        assert fussy.disabled
        assert not fussy.completed_timings  # dropped out mid-kernel
        assert healthy.failure is None
        assert healthy.tool.counts["memory"] == 4
        assert len(healthy.completed_timings) == 1

    def test_unisolated_sink_propagates(self):
        class Fussy(Tool):
            def on_memory(self, event, launch):
                raise UnsupportedFeatureError("boom")

        device = Device(SIM_GPU)
        device.add_sink(ToolSink(Fussy(), isolate=False))
        a = device.alloc("a", 4)
        with pytest.raises(UnsupportedFeatureError):
            device.launch(_small_kernel, grid_dim=1, block_dim=4, args=(a,))

    def test_private_timing_shares_native_only(self):
        device = Device(SIM_GPU)
        sink = device.add_sink(ToolSink(IGuard()))
        a = device.alloc("a", 4)
        run = device.launch(_small_kernel, grid_dim=1, block_dim=4, args=(a,))
        (view,) = sink.completed_timings
        assert view is not run.timing
        assert view.native_time == run.timing.native_time
        # the device's own breakdown stays clean of the tool's overheads
        assert run.overhead == pytest.approx(1.0)
        assert view.overhead > 1.0


class TestFanout:
    """Acceptance: one execution pass drives >= 2 detectors, each equal
    to its solo run — overheads included, to float precision."""

    def test_two_detectors_one_pass_match_solo_runs(self):
        workload = get_workload("hashtable")
        fan_ig, fan_bar = run_workload_fanout(
            workload, [IGuard, Barracuda], seeds=(1,)
        )
        solo_ig = run_workload(workload, IGuard, seeds=(1,))
        solo_bar = run_workload(workload, Barracuda, seeds=(1,))
        assert fan_ig == solo_ig
        assert fan_bar == solo_bar

    def test_fanout_isolates_barracuda_unsupported(self):
        # warpAA's scoped atomics kill Barracuda but not the shared pass.
        workload = get_workload("warpAA")
        fan_ig, fan_bar = run_workload_fanout(
            workload, [IGuard, Barracuda], seeds=(1,)
        )
        assert fan_ig == run_workload(workload, IGuard, seeds=(1,))
        assert fan_bar.status == "unsupported"
        assert fan_bar.status == run_workload(workload, Barracuda, seeds=(1,)).status

    def test_fanout_complex_binary_precheck(self):
        workload = get_workload("louvain")
        fan_ig, fan_bar = run_workload_fanout(
            workload, [IGuard, Barracuda], seeds=(1,)
        )
        assert fan_bar.status == "unsupported"
        assert "PTX" in fan_bar.detail
        assert fan_ig.status == "ok"

    def test_fanout_multi_seed_union(self):
        workload = get_workload("graph-color")
        (fan_ig,) = run_workload_fanout(workload, [IGuard])
        assert fan_ig == run_workload(workload, IGuard)
