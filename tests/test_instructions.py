"""Tests for the DSL instruction set and convenience constructors."""

import pytest

from repro.gpu.instructions import (
    Atomic,
    AtomicOp,
    Compute,
    Fence,
    Load,
    Scope,
    Store,
    Syncthreads,
    Syncwarp,
    apply_atomic,
    atomic_add,
    atomic_cas,
    atomic_exch,
    atomic_load,
    atomic_max,
    atomic_min,
    compute,
    fence,
    fence_block,
    fence_device,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.gpu.memory import GlobalMemory


@pytest.fixture
def arr():
    mem = GlobalMemory(1024 * 1024)
    return mem.alloc("a", 16)


class TestScope:
    def test_system_collapses_to_device(self):
        assert Scope.SYSTEM.effective is Scope.DEVICE

    def test_device_covers_block(self):
        assert Scope.DEVICE.covers(Scope.BLOCK)

    def test_block_does_not_cover_device(self):
        assert not Scope.BLOCK.covers(Scope.DEVICE)

    def test_scope_covers_itself(self):
        for s in Scope:
            assert s.covers(s)


class TestConstructors:
    def test_load(self, arr):
        instr = load(arr, 3)
        assert isinstance(instr, Load)
        assert instr.address == arr.addr_of(3)

    def test_store(self, arr):
        instr = store(arr, 2, 99)
        assert isinstance(instr, Store)
        assert instr.value == 99

    def test_atomic_add_default_scope(self, arr):
        instr = atomic_add(arr, 0, 1)
        assert instr.op is AtomicOp.ADD
        assert instr.scope is Scope.DEVICE

    def test_atomic_add_block_scope(self, arr):
        assert atomic_add(arr, 0, 1, scope=Scope.BLOCK).scope is Scope.BLOCK

    def test_atomic_cas_carries_compare(self, arr):
        instr = atomic_cas(arr, 0, 0, 1)
        assert instr.op is AtomicOp.CAS
        assert instr.compare == 0
        assert instr.value == 1

    def test_atomic_exch(self, arr):
        assert atomic_exch(arr, 0, 0).op is AtomicOp.EXCH

    def test_atomic_load_is_zero_add(self, arr):
        instr = atomic_load(arr, 1)
        assert instr.op is AtomicOp.ADD
        assert instr.value == 0

    def test_min_max(self, arr):
        assert atomic_min(arr, 0, 1).op is AtomicOp.MIN
        assert atomic_max(arr, 0, 1).op is AtomicOp.MAX

    def test_fences(self):
        assert fence().scope is Scope.DEVICE
        assert fence_block().scope is Scope.BLOCK
        assert fence_device().scope is Scope.DEVICE
        assert isinstance(fence(Scope.BLOCK), Fence)

    def test_barriers(self):
        assert isinstance(syncthreads(), Syncthreads)
        assert isinstance(syncwarp(), Syncwarp)
        assert syncwarp(0b1010).mask == 0b1010

    def test_compute(self):
        assert compute(7).cycles == 7
        assert isinstance(compute(), Compute)


class TestApplyAtomic:
    @pytest.mark.parametrize(
        "op,old,value,compare,expected",
        [
            (AtomicOp.ADD, 10, 3, None, 13),
            (AtomicOp.SUB, 10, 3, None, 7),
            (AtomicOp.EXCH, 10, 3, None, 3),
            (AtomicOp.CAS, 0, 9, 0, 9),
            (AtomicOp.CAS, 5, 9, 0, 5),
            (AtomicOp.MIN, 10, 3, None, 3),
            (AtomicOp.MIN, 3, 10, None, 3),
            (AtomicOp.MAX, 3, 10, None, 10),
            (AtomicOp.OR, 0b0101, 0b0011, None, 0b0111),
            (AtomicOp.AND, 0b0101, 0b0011, None, 0b0001),
            (AtomicOp.XOR, 0b0101, 0b0011, None, 0b0110),
        ],
    )
    def test_semantics(self, op, old, value, compare, expected):
        assert apply_atomic(op, old, value, compare) == expected
