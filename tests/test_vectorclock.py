"""Tests for the vector clocks and FastTrack access histories."""

from hypothesis import given, strategies as st

from repro.baselines.vectorclock import AccessHistory, VectorClock


class TestVectorClock:
    def test_default_zero(self):
        assert VectorClock().get(5) == 0

    def test_bump(self):
        vc = VectorClock()
        vc.bump(3)
        vc.bump(3)
        assert vc.get(3) == 2

    def test_join_takes_max(self):
        a = VectorClock({0: 5, 1: 1})
        b = VectorClock({1: 9, 2: 2})
        a.join(b)
        assert (a.get(0), a.get(1), a.get(2)) == (5, 9, 2)

    def test_copy_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.bump(0)
        assert a.get(0) == 1

    def test_dominates_epoch(self):
        vc = VectorClock({4: 7})
        assert vc.dominates_epoch((4, 7))
        assert vc.dominates_epoch((4, 3))
        assert not vc.dominates_epoch((4, 8))
        assert not vc.dominates_epoch((9, 1))

    def test_epoch_of(self):
        vc = VectorClock({2: 3})
        assert vc.epoch_of(2) == (2, 3)
        assert vc.epoch_of(5) == (5, 0)

    @given(st.dictionaries(st.integers(0, 20), st.integers(0, 100), max_size=8),
           st.dictionaries(st.integers(0, 20), st.integers(0, 100), max_size=8))
    def test_join_commutative(self, da, db):
        a1 = VectorClock(da); a1.join(VectorClock(db))
        a2 = VectorClock(db); a2.join(VectorClock(da))
        # Compare semantically: sparse clocks may carry explicit zeros.
        for tid in set(da) | set(db):
            assert a1.get(tid) == a2.get(tid)

    @given(st.dictionaries(st.integers(0, 20), st.integers(1, 100), max_size=8))
    def test_join_idempotent(self, d):
        a = VectorClock(d)
        a.join(VectorClock(d))
        assert a.clocks == d


class TestAccessHistory:
    def test_write_epoch_recorded(self):
        h = AccessHistory()
        h.record_write(tid=1, clock=5, warp=0)
        assert h.write_epoch == (1, 5)
        assert h.write_warp == 0

    def test_write_clears_reads(self):
        h = AccessHistory()
        h.record_read(1, 1, 0, VectorClock({1: 1}))
        h.record_write(2, 1, 0)
        assert h.read_epoch is None and h.read_vc is None

    def test_same_thread_reads_stay_epoch(self):
        h = AccessHistory()
        vc = VectorClock({1: 1})
        h.record_read(1, 1, 0, vc)
        h.record_read(1, 2, 0, vc)
        assert h.read_epoch == (1, 2)
        assert h.read_vc is None

    def test_ordered_reads_stay_epoch(self):
        # Reader 2 already "saw" reader 1's epoch: one epoch suffices.
        h = AccessHistory()
        h.record_read(1, 1, 0, VectorClock({1: 1}))
        h.record_read(2, 4, 1, VectorClock({1: 1, 2: 4}))
        assert h.read_epoch == (2, 4)

    def test_concurrent_reads_go_shared(self):
        h = AccessHistory()
        h.record_read(1, 1, 0, VectorClock({1: 1}))
        h.record_read(2, 1, 1, VectorClock({2: 1}))  # does not dominate
        assert h.read_vc is not None
        assert set(h.read_vc) == {1, 2}

    def test_concurrent_readers_query(self):
        h = AccessHistory()
        h.record_read(1, 5, 0, VectorClock({1: 5}))
        writer_vc = VectorClock({1: 2})  # has NOT seen the read
        assert list(h.concurrent_readers(writer_vc)) == [(1, 5, 0)]

    def test_no_concurrent_readers_when_dominated(self):
        h = AccessHistory()
        h.record_read(1, 5, 0, VectorClock({1: 5}))
        writer_vc = VectorClock({1: 9})
        assert list(h.concurrent_readers(writer_vc)) == []

    def test_shared_readers_filtered_by_domination(self):
        h = AccessHistory()
        h.record_read(1, 1, 0, VectorClock({1: 1}))
        h.record_read(2, 1, 1, VectorClock({2: 1}))
        writer_vc = VectorClock({1: 9})  # saw reader 1, not reader 2
        assert [t for t, _, _ in h.concurrent_readers(writer_vc)] == [2]
