"""The static race analyzer: verdicts, pruning contract, soundness.

Three layers of pinning:

1. **Direction-pinned verdicts** — the four race-free fault patterns
   must come back ``clean`` and all seven annotated mutants must come
   back ``racy`` with exactly the annotated Table 2 race type.  These
   are the same fixtures the dynamic recall gate runs, so the static
   and dynamic verdicts are pinned to one shared ground truth.
2. **The pruning contract** — with ``static_prune=True`` the detector
   must produce byte-identical races, race types, stats and timing
   breakdowns, while actually eliding checks on the clean patterns.
3. **The soundness property** — over *generated* fuzz programs, any
   site the analyzer proves safe must never be the site of a dynamic
   race report, for any scheduler seed and shard count.  This is the
   invariant that makes check pruning safe at all.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_kernel, extract_kernel
from repro.analysis.extract import ExtractionError, extract_or_unanalyzable
from repro.analysis.lint import analyze_workload, to_document
from repro.analysis.prune import compute_prune_hints
from repro.common.rng import SplitMix64
from repro.core.config import DEFAULT_CONFIG
from repro.core.detector import IGuard
from repro.faults.fuzz import gen_program, program_workload
from repro.faults.workloads import FAULT_PATTERNS, get_pattern
from repro.gpu.device import Device
from repro.gpu.instructions import Scope, load, scope_covers, store
from repro.workloads.base import SIM_GPU

PRUNE_CONFIG = replace(DEFAULT_CONFIG, static_prune=True)


# ---------------------------------------------------------------------------
# Direction-pinned verdicts: baselines clean, mutants racy with the
# annotated type
# ---------------------------------------------------------------------------


class TestPatternVerdicts:
    @pytest.mark.parametrize(
        "pattern", [p.name for p in FAULT_PATTERNS]
    )
    def test_baseline_is_statically_clean(self, pattern):
        lint = analyze_workload(get_pattern(pattern).workload)
        assert lint.status == "ok"
        assert lint.verdict == "clean", (
            f"{pattern} baseline must lint clean, got {lint.verdict}: "
            f"{[f.to_json() for l in lint.launches for f in l.report.findings]}"
        )
        # Clean means *proven*: every launch fully analyzed, no sites
        # left in the may-race set.
        for launch in lint.launches:
            assert launch.report.analyzable
            assert not launch.report.may_race_sites

    @pytest.mark.parametrize(
        "pattern,mutation,expected",
        [
            (p.name, spec.name, spec.expected_type)
            for p in FAULT_PATTERNS
            for spec in p.mutations
        ],
    )
    def test_mutant_is_statically_racy(self, pattern, mutation, expected):
        workload = get_pattern(pattern)
        spec = workload.mutation(mutation)
        lint = analyze_workload(workload.workload, mutation_spec=spec)
        assert lint.status == "ok"
        assert lint.verdict == "racy", (
            f"{pattern}/{mutation} must lint racy, got {lint.verdict}"
        )
        assert expected in lint.race_types, (
            f"{pattern}/{mutation}: annotated {expected}, "
            f"static found {lint.race_types}"
        )


# ---------------------------------------------------------------------------
# Extraction edges
# ---------------------------------------------------------------------------


class TestExtraction:
    def test_value_dependent_control_flow_is_unanalyzable(self):
        def value_dep(ctx, a):
            v = yield load(a, 0)
            if v == 0:
                yield store(a, 1, 1)

        device = Device(SIM_GPU)
        a = device.alloc("a", 4)
        with pytest.raises(ExtractionError):
            extract_kernel(value_dep, 1, 4, SIM_GPU.warp_size, (a,))
        summary = extract_or_unanalyzable(
            value_dep, 1, 4, SIM_GPU.warp_size, (a,)
        )
        assert not summary.analyzable
        assert summary.reason

    def test_unanalyzable_kernel_has_no_safe_sites(self):
        def value_dep(ctx, a):
            v = yield load(a, 0)
            if v == 0:
                yield store(a, 1, 1)

        device = Device(SIM_GPU)
        a = device.alloc("a", 4)
        summary = extract_or_unanalyzable(
            value_dep, 1, 4, SIM_GPU.warp_size, (a,)
        )
        report = analyze_kernel(summary)
        assert not report.analyzable
        assert not report.safe_sites
        # Unanalyzable allows every dynamic site — never blocks one.
        assert report.allows_dynamic_site("anything:1")

    def test_scope_covers_lattice(self):
        assert scope_covers(Scope.DEVICE, Scope.BLOCK)
        assert scope_covers(Scope.SYSTEM, Scope.DEVICE)
        # SYSTEM and DEVICE collapse on a single-GPU machine.
        assert scope_covers(Scope.DEVICE, Scope.SYSTEM)
        assert not scope_covers(Scope.BLOCK, Scope.DEVICE)
        assert scope_covers(Scope.BLOCK, Scope.BLOCK)
        # Scope.covers delegates to the shared helper.
        assert Scope.DEVICE.covers(Scope.BLOCK)
        assert not Scope.BLOCK.covers(Scope.DEVICE)


# ---------------------------------------------------------------------------
# The pruning contract
# ---------------------------------------------------------------------------


def _run_pattern(pattern_name, config):
    workload = get_pattern(pattern_name).workload
    device = Device(SIM_GPU)
    tool = device.add_tool(IGuard(config=config))
    workload.run(device, workload.seeds[0])
    sites = sorted((str(ip), str(t)) for ip, t in tool.races.sites())
    timing = [
        (run.kernel_name, run.timing.native_time, run.timing.total_time)
        for run in device.runs
    ]
    pruned = sum(s.accesses_pruned for s in tool.stats)
    checked = sum(s.accesses_checked for s in tool.stats)
    return sites, timing, pruned, checked


class TestPruningContract:
    @pytest.mark.parametrize(
        "pattern", [p.name for p in FAULT_PATTERNS]
    )
    def test_reports_identical_and_checks_elided(self, pattern):
        off = _run_pattern(pattern, DEFAULT_CONFIG)
        on = _run_pattern(pattern, PRUNE_CONFIG)
        assert on[0] == off[0], "race sites must be byte-identical"
        assert on[1] == off[1], "cycle charges must be byte-identical"
        assert off[2] == 0, "pruning off must never prune"
        # The baselines are fully proven safe, so pruning-on must elide
        # every single Table 2 check.
        assert on[2] > 0 and on[3] == 0, (
            f"expected all checks elided, got pruned={on[2]} "
            f"checked={on[3]}"
        )

    def test_racy_program_reports_survive_pruning(self):
        # A program with genuine races: pruning may elide provably-safe
        # sites but must report the identical races.
        statements = [
            ["store", 3, 0, 1, 7],   # warp 0 leader writes a[1]
            ["store", 4, 0, 1, 9],   # warp 1 leader writes a[1]: BR race
            ["syncthreads", 0, 0, 0, 0],
            ["store", 0, 1, 2, 5],   # all threads write b[2] post-barrier
        ]
        workload = program_workload(statements)

        def run(config):
            device = Device(SIM_GPU)
            tool = device.add_tool(IGuard(config=config))
            workload.run(device, 0)
            return sorted(
                (str(ip), str(t)) for ip, t in tool.races.sites()
            )

        off, on = run(DEFAULT_CONFIG), run(PRUNE_CONFIG)
        assert off == on
        assert off, "fixture must actually race"

    def test_no_hints_for_replayed_launches(self):
        # Replay reconstructs LaunchInfo without kernel_fn; the detector
        # must run fully unpruned rather than guess.
        from repro.instrument.nvbit import LaunchInfo
        from repro.instrument.timing import TimingBreakdown

        launch = LaunchInfo(
            kernel_name="k", grid_dim=1, block_dim=4, warp_size=4,
            warps_per_block=1, num_threads=4,
            timing=TimingBreakdown(parallelism=1.0), device=None,
        )
        assert launch.kernel_fn is None
        assert compute_prune_hints(launch) is None

    def test_no_hints_under_a_mutator(self):
        # With a fault mutator installed the executed stream differs
        # from the source: hints must be withheld.
        from repro.faults.mutators import install

        pattern = get_pattern("ff-pipeline")
        spec = pattern.mutations[0]
        device = Device(SIM_GPU)
        tool = device.add_tool(IGuard(config=PRUNE_CONFIG))
        install(spec, device)
        try:
            pattern.workload.run(device, pattern.workload.seeds[0])
        except Exception:
            pass
        assert sum(s.accesses_pruned for s in tool.stats) == 0
        # And the injected race is still caught.
        assert tool.race_count > 0

    def test_history_ablation_disables_pruning(self):
        config = replace(
            DEFAULT_CONFIG, static_prune=True, accessor_history=2
        )
        workload = get_pattern("ff-pipeline").workload
        device = Device(SIM_GPU)
        tool = device.add_tool(IGuard(config=config))
        workload.run(device, workload.seeds[0])
        assert sum(s.accesses_pruned for s in tool.stats) == 0
        assert sum(s.accesses_checked for s in tool.stats) > 0

    def test_batched_sharded_driver_refuses_pruning(self):
        from repro.core.sharding import BatchShardedIGuard

        assert not BatchShardedIGuard.static_prune_supported
        workload = get_pattern("ff-pipeline").workload
        device = Device(SIM_GPU)
        tool = device.add_tool(
            BatchShardedIGuard(config=PRUNE_CONFIG, shards=2)
        )
        workload.run(device, workload.seeds[0])
        assert sum(s.accesses_pruned for s in tool.stats) == 0


# ---------------------------------------------------------------------------
# Lint document plumbing
# ---------------------------------------------------------------------------


class TestLintDocument:
    def test_document_is_deterministic(self):
        workloads = [get_pattern(p.name).workload for p in FAULT_PATTERNS]
        first = to_document([analyze_workload(w) for w in workloads])
        second = to_document([analyze_workload(w) for w in workloads])
        assert first == second
        assert first["summary"]["clean"] == len(FAULT_PATTERNS)

    def test_driver_error_degrades_to_error_verdict(self):
        from repro.workloads.base import Workload

        def _boom(device, seed):
            raise RuntimeError("driver exploded")

        lint = analyze_workload(
            Workload(name="boom", suite="t", run=_boom, seeds=(0,),
                     description="")
        )
        assert lint.verdict == "error"
        assert lint.allows_dynamic_site("any:1")


# ---------------------------------------------------------------------------
# The soundness property over generated programs
# ---------------------------------------------------------------------------


def _dynamic_sites(workload, seed, shards):
    device = Device(SIM_GPU)
    tool = device.add_tool(IGuard(shards=shards))
    workload.run(device, seed)
    return {str(ip) for ip, _ in tool.races.sites()}


class TestSoundness:
    @settings(max_examples=25, deadline=None)
    @given(
        program_seed=st.integers(min_value=0, max_value=10_000),
        scheduler_seed=st.integers(min_value=0, max_value=7),
        shards=st.sampled_from([1, 4]),
    )
    def test_static_safe_sites_never_race_dynamically(
        self, program_seed, scheduler_seed, shards
    ):
        statements = gen_program(SplitMix64(program_seed))
        workload = program_workload(statements)
        lint = analyze_workload(workload)
        safe = lint.static_safe_sites()
        dynamic = _dynamic_sites(workload, scheduler_seed, shards)
        colliding = dynamic & safe
        assert not colliding, (
            f"program {program_seed} seed {scheduler_seed} "
            f"shards {shards}: dynamic races at statically-safe sites "
            f"{sorted(colliding)}\nstatements: {statements}"
        )
        # The stronger gate the fuzzer enforces: every dynamic site
        # must be inside the static may-race set.
        for ip in dynamic:
            assert lint.allows_dynamic_site(ip), (
                f"dynamic race at {ip} outside the static may-race set"
            )

    @settings(max_examples=10, deadline=None)
    @given(program_seed=st.integers(min_value=0, max_value=10_000))
    def test_pruned_run_matches_unpruned(self, program_seed):
        statements = gen_program(SplitMix64(program_seed))
        workload = program_workload(statements)

        def run(config):
            device = Device(SIM_GPU)
            tool = device.add_tool(IGuard(config=config))
            workload.run(device, 0)
            sites = sorted(
                (str(ip), str(t)) for ip, t in tool.races.sites()
            )
            timing = [
                (r.timing.native_time, r.timing.total_time)
                for r in device.runs
            ]
            return sites, timing

        assert run(DEFAULT_CONFIG) == run(PRUNE_CONFIG)
