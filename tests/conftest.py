"""Shared fixtures and kernel helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import IGuard
from repro.gpu.arch import TEST_GPU, GPUConfig
from repro.gpu.device import Device


@pytest.fixture
def device() -> Device:
    """A small, fast simulated GPU (warp size 4)."""
    return Device(TEST_GPU)


@pytest.fixture
def detector(device) -> IGuard:
    """An iGUARD detector attached to the small device."""
    return device.add_tool(IGuard())


def fresh_device(**overrides) -> Device:
    """Build an independent test device (for tests needing several)."""
    if overrides:
        base = TEST_GPU.__dict__ | overrides
        return Device(GPUConfig(**{
            k: base[k]
            for k in (
                "name", "num_sms", "warp_size", "max_threads_per_block",
                "lanes_per_sm", "memory_bytes", "supports_its",
            )
        }))
    return Device(TEST_GPU)


def detect(kernel, grid_dim, block_dim, arrays, seed=1, config=None, **launch_kwargs):
    """Run one kernel under a fresh device+detector; return (detector, device).

    ``arrays`` maps name -> (num_words, init) or num_words.
    """
    dev = fresh_device()
    det = dev.add_tool(IGuard(config) if config else IGuard())
    allocated = {}
    for name, spec in arrays.items():
        if isinstance(spec, tuple):
            num_words, init = spec
        else:
            num_words, init = spec, 0
        allocated[name] = dev.alloc(name, num_words, init=init)
    dev.launch(
        kernel, grid_dim, block_dim,
        args=tuple(allocated.values()), seed=seed, **launch_kwargs,
    )
    return det, allocated
