"""Tests for the workload runner, report rendering, and the CLI."""

import pytest

from repro.core import IGuard
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.cli import main as cli_main
from repro.experiments.reporting import fmt_overhead, render_table, title
from repro.workloads import get_workload, run_workload
from repro.workloads.base import Workload
from repro.workloads.runner import measured_overhead


class TestRunner:
    def test_native_run(self):
        result = run_workload(get_workload("b_reduce"), None, seeds=(1,))
        assert result.detector == "native"
        assert result.ran
        assert result.races == 0
        assert result.overhead == pytest.approx(1.0)

    def test_seed_union(self):
        w = get_workload("reduction")
        one = run_workload(w, IGuard, seeds=(1,))
        many = run_workload(w, IGuard, seeds=(1, 2, 3))
        assert many.races >= one.races

    def test_result_breakdown_keys(self):
        result = run_workload(get_workload("b_scan"), IGuard, seeds=(1,))
        assert set(result.breakdown) == {
            "native", "nvbit", "setup", "instrumentation", "detection", "misc"
        }

    def test_measured_overhead_helper(self):
        overhead = measured_overhead(get_workload("b_scan"), IGuard, seeds=(1,))
        assert overhead > 1.0

    def test_race_sites_are_sorted_tuples(self):
        result = run_workload(get_workload("1dconv"), IGuard, seeds=(1,))
        assert result.race_sites == tuple(sorted(result.race_sites))
        ip, race_type = result.race_sites[0]
        assert isinstance(ip, str) and race_type == "AS"

    def test_workload_type_tags(self):
        assert get_workload("conjugGMB").type_tags() == "CG (DR)"
        assert get_workload("uts").type_tags() == "AS, IL"
        assert get_workload("b_scan").type_tags() == ""

    def test_has_races(self):
        assert get_workload("uts").has_races
        assert not get_workload("b_scan").has_races


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # aligned widths
        assert "longer" in lines[3]

    def test_render_table_header_separator(self):
        text = render_table(["col"], [["v"]])
        assert "-" in text.splitlines()[1]

    def test_fmt_overhead(self):
        assert fmt_overhead(5.04) == "5.0x"
        assert fmt_overhead(123.456) == "123.5x"

    def test_title_underline(self):
        assert title("abc").splitlines()[1] == "==="


class TestCLI:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table4", "table5", "figure11", "figure12",
            "figure13", "figure14", "motivation",
        }

    def test_cli_runs_one(self, capsys):
        assert cli_main(["motivation"]) == 0
        out = capsys.readouterr().out
        assert "scoped fence" in out.lower()
        assert "[motivation completed" in out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])

    def test_modules_have_run_and_render(self):
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.render)
            assert callable(module.main)
