"""Tests for lock tables and the section 6.3 inference protocol."""

from repro.core.locktable import LockTable
from repro.gpu.instructions import Scope


class TestInsertActivate:
    def test_insert_is_valid_not_active(self):
        t = LockTable()
        assert t.insert(0x1000, Scope.DEVICE)
        entry = t.entries[0]
        assert entry.valid and not entry.active

    def test_fence_activates(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        assert t.activate(Scope.DEVICE) == 1
        assert t.entries[0].active
        assert t.holds_any()

    def test_device_fence_activates_block_lock(self):
        # "matching or narrower scope": a device fence completes a
        # block-scope acquire.
        t = LockTable()
        t.insert(0x1000, Scope.BLOCK)
        assert t.activate(Scope.DEVICE) == 1

    def test_block_fence_does_not_activate_device_lock(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        assert t.activate(Scope.BLOCK) == 0
        assert not t.holds_any()

    def test_reinsert_same_lock_is_noop(self):
        # A CAS retry loop inserts the same lock repeatedly.
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        t.insert(0x1000, Scope.DEVICE)
        assert sum(e.valid for e in t.entries) == 1

    def test_capacity_three(self):
        t = LockTable()
        for i in range(3):
            assert t.insert(0x1000 + 4 * i, Scope.DEVICE)
        assert not t.insert(0x2000, Scope.DEVICE)
        assert t.overflows == 1

    def test_activate_idempotent(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        t.activate(Scope.DEVICE)
        assert t.activate(Scope.DEVICE) == 0


class TestRelease:
    def test_release_invalidates(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        t.activate(Scope.DEVICE)
        assert t.release(0x1000, Scope.DEVICE)
        assert not t.holds_any()
        assert not t.entries[0].valid

    def test_release_frees_slot(self):
        t = LockTable()
        for i in range(3):
            t.insert(0x1000 + 4 * i, Scope.DEVICE)
        t.release(0x1000, Scope.DEVICE)
        assert t.insert(0x2000, Scope.DEVICE)

    def test_release_unknown_lock(self):
        t = LockTable()
        assert not t.release(0x9999 * 4, Scope.DEVICE)

    def test_release_without_fence_still_unlocks(self):
        # "even if a programmer misses a threadfence, we will infer the
        # atomicExch as unlock" (6.3).
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        assert t.release(0x1000, Scope.DEVICE)

    def test_scope_mismatch_does_not_release(self):
        t = LockTable()
        t.insert(0x1000, Scope.BLOCK)
        assert not t.release(0x1000, Scope.DEVICE)


class TestSummaries:
    def test_bloom_of_held_locks(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        t.insert(0x1004, Scope.DEVICE)
        t.activate(Scope.DEVICE)
        bloom = t.locks_bloom()
        assert not bloom.empty

    def test_bloom_empty_when_inactive(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        assert t.locks_bloom().empty  # acquired but not yet fenced

    def test_held_hashes(self):
        t = LockTable()
        t.insert(0x1000, Scope.DEVICE)
        t.activate(Scope.DEVICE)
        assert len(t.held_hashes()) == 1

    def test_same_lock_same_summary(self):
        a, b = LockTable(), LockTable()
        for t in (a, b):
            t.insert(0x1000, Scope.DEVICE)
            t.activate(Scope.DEVICE)
        assert a.locks_bloom() == b.locks_bloom()

    def test_is_thread_default_false(self):
        assert not LockTable().is_thread
