"""Tests for the hashing helpers."""

from hypothesis import given, strategies as st

from repro.common.hashing import address_hash18, bloom_hashes16, mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_zero_maps_to_zero(self):
        assert mix64(0) == 0

    def test_stays_64_bit(self):
        assert mix64((1 << 64) - 1) < (1 << 64)

    @given(st.integers(0, (1 << 64) - 1))
    def test_range(self, x):
        assert 0 <= mix64(x) < (1 << 64)

    @given(st.integers(0, (1 << 32) - 1))
    def test_avalanche_on_increment(self, x):
        # Adjacent inputs should differ in many bits (sanity, not proof).
        diff = mix64(x) ^ mix64(x + 1)
        assert bin(diff).count("1") >= 10


class TestAddressHash18:
    def test_range(self):
        assert 0 <= address_hash18(0xDEADBEEF) < (1 << 18)

    def test_adjacent_words_distinct(self):
        # The lock table must distinguish adjacent lock variables.
        assert address_hash18(0x1000) != address_hash18(0x1004)

    def test_tracks_granule(self):
        # Addresses within one 4-byte granule hash identically.
        assert address_hash18(0x1000) == address_hash18(0x1003)

    @given(st.integers(0, (1 << 40)))
    def test_range_property(self, addr):
        assert 0 <= address_hash18(addr) < (1 << 18)


class TestBloomHashes16:
    @given(st.integers(0, (1 << 18) - 1))
    def test_positions_in_range(self, value):
        b1, b2 = bloom_hashes16(value)
        assert 0 <= b1 < 16
        assert 0 <= b2 < 16

    @given(st.integers(0, (1 << 18) - 1))
    def test_pair_structure(self, value):
        # The structured encoding assigns the pair {2k, 2k+1}.
        b1, b2 = bloom_hashes16(value)
        assert b2 == b1 + 1
        assert b1 % 2 == 0

    def test_distinct_residues_disjoint(self):
        pairs = [set(bloom_hashes16(k)) for k in range(8)]
        for i in range(8):
            for j in range(i + 1, 8):
                assert not (pairs[i] & pairs[j])
