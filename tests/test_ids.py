"""Tests for thread/warp/block identity arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LaunchError
from repro.gpu.ids import Dim3, block_of_warp, locate, warps_in_block


class TestDim3:
    def test_count(self):
        assert Dim3(4, 2, 3).count == 24

    def test_defaults(self):
        assert Dim3(8).count == 8

    def test_of_int(self):
        assert Dim3.of(5) == Dim3(5)

    def test_of_tuple(self):
        assert Dim3.of((2, 3)) == Dim3(2, 3)

    def test_of_dim3(self):
        d = Dim3(2)
        assert Dim3.of(d) is d

    def test_rejects_zero(self):
        with pytest.raises(LaunchError):
            Dim3(0)


class TestLocate:
    def test_first_thread(self):
        loc = locate(0, threads_per_block=8, warp_size=4)
        assert loc.block_id == 0
        assert loc.warp_id == 0
        assert loc.lane == 0
        assert loc.tid_in_block == 0

    def test_second_warp_of_block(self):
        loc = locate(5, threads_per_block=8, warp_size=4)
        assert loc.block_id == 0
        assert loc.warp_in_block == 1
        assert loc.warp_id == 1
        assert loc.lane == 1

    def test_second_block(self):
        loc = locate(8, threads_per_block=8, warp_size=4)
        assert loc.block_id == 1
        assert loc.warp_id == 2  # global warp index
        assert loc.tid_in_block == 0

    def test_partial_warp_block(self):
        # 6 threads per block with warp size 4: two warps, second partial.
        loc = locate(5, threads_per_block=6, warp_size=4)
        assert loc.warp_in_block == 1
        assert loc.lane == 1

    @given(
        tid=st.integers(0, 10_000),
        tpb=st.integers(1, 256),
        ws=st.sampled_from([4, 8, 16, 32]),
    )
    def test_roundtrip_property(self, tid, tpb, ws):
        loc = locate(tid, tpb, ws)
        wpb = warps_in_block(tpb, ws)
        # Reconstruct the linear tid from the components.
        rebuilt = (
            loc.block_id * tpb + loc.warp_in_block * ws + loc.lane
        )
        assert rebuilt == tid
        # The metadata's block derivation must agree with the real block.
        assert block_of_warp(loc.warp_id, wpb) == loc.block_id
        assert 0 <= loc.lane < ws


class TestWarpsInBlock:
    def test_exact(self):
        assert warps_in_block(32, 4) == 8

    def test_rounds_up(self):
        assert warps_in_block(33, 4) == 9

    def test_single_thread(self):
        assert warps_in_block(1, 32) == 1


class TestBlockOfWarp:
    def test_division(self):
        assert block_of_warp(7, 4) == 1

    def test_matches_paper_derivation(self):
        # Section 6.2: block = WarpID / warps-per-block.
        assert block_of_warp(0, 2) == 0
        assert block_of_warp(1, 2) == 0
        assert block_of_warp(2, 2) == 1
