"""Tests for the UVM-backed metadata space (section 6.1)."""

from repro.core.uvm import ManagedMetadataSpace, UVMParams

MiB = 1024 * 1024


def space(metadata_mb=8, free_mb=16, prefault=True, **params):
    return ManagedMetadataSpace(
        metadata_virtual_bytes=metadata_mb * MiB,
        device_free_bytes=free_mb * MiB,
        prefault=prefault,
        params=UVMParams(**params) if params else UVMParams(),
    )


class TestPrefault:
    def test_everything_prefaulted_when_fits(self):
        s = space(metadata_mb=8, free_mb=16)
        assert s.fits_entirely
        assert s.prefaulted_pages == 4  # 8 MiB / 2 MiB pages

    def test_prefault_capped_by_free_memory(self):
        s = space(metadata_mb=32, free_mb=8)
        assert not s.fits_entirely
        assert s.prefaulted_pages == 4

    def test_no_prefault_option(self):
        s = space(prefault=False)
        assert s.prefaulted_pages == 0
        assert s.setup_cycles == 0.0

    def test_setup_cost_proportional(self):
        a = space(metadata_mb=4)
        b = space(metadata_mb=8)
        assert b.setup_cycles == 2 * a.setup_cycles


class TestAccess:
    def test_prefaulted_access_is_free(self):
        s = space(metadata_mb=8, free_mb=16)
        assert s.access(0) == 0.0
        assert s.hits == 1 and s.faults == 0

    def test_unfaulted_page_costs(self):
        s = space(metadata_mb=32, free_mb=8)
        cost = s.access(20 * MiB)  # beyond the 8 MiB prefaulted prefix
        assert cost > 0
        assert s.faults == 1

    def test_faulted_page_becomes_resident(self):
        s = space(metadata_mb=32, free_mb=8, prefault=False)
        s.access(20 * MiB)
        assert s.access(20 * MiB) == 0.0

    def test_eviction_when_full(self):
        # 2 pages of device memory, 4 pages touched round-robin: thrash.
        s = space(metadata_mb=8, free_mb=4, prefault=False)
        for page in range(4):
            s.access(page * 2 * MiB)
        assert s.evictions > 0

    def test_eviction_is_lru(self):
        s = space(metadata_mb=8, free_mb=4, prefault=False)
        s.access(0)          # page 0
        s.access(2 * MiB)    # page 1
        s.access(0)          # touch page 0 (now MRU)
        s.access(4 * MiB)    # page 2: evicts page 1, not page 0
        assert s.access(0) == 0.0
        assert s.access(2 * MiB) > 0

    def test_zero_capacity_streams(self):
        s = space(metadata_mb=8, free_mb=0, prefault=False)
        assert s.access(0) > 0
        assert s.access(0) > 0  # never becomes resident
        assert s.evictions == 0

    def test_fault_cost_accounting(self):
        s = space(metadata_mb=32, free_mb=8, prefault=False,
                  fault_cycles=100.0, migration_cycles=0.0)
        s.access(0)
        assert s.fault_cycles_total == 100.0

    def test_migration_surcharge(self):
        s = space(metadata_mb=8, free_mb=2, prefault=False,
                  fault_cycles=10.0, migration_cycles=7.0)
        s.access(0)
        cost = s.access(2 * MiB)  # must evict
        assert cost == 17.0


class TestGracefulDegradation:
    """The Figure 14 property: overheads grow, runs never fail."""

    def test_huge_metadata_still_serviced(self):
        s = space(metadata_mb=4096, free_mb=64)
        total = 0.0
        for i in range(100):
            total += s.access(i * 37 * MiB)
        assert total > 0  # expensive, but every access succeeded

    def test_cost_monotone_in_pressure(self):
        low = space(metadata_mb=64, free_mb=64)
        high = space(metadata_mb=64, free_mb=8)
        offsets = [i * 2 * MiB for i in range(32)]
        low_cost = sum(low.access(o) for o in offsets)
        high_cost = sum(high.access(o) for o in offsets)
        assert high_cost > low_cost
