"""The same-epoch fast path: bit-identical output, observable elision.

The fast path (``IGuardConfig.fast_path``) may only change the
reproduction's wall-clock time.  These tests replay recorded traces — the
exact same event stream — through fast-path-on and fast-path-off
detectors and assert equality of everything a detector reports: races,
race types, race sites, and the full Figure 13 cycle breakdown.
"""

import pytest

from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.engine.replay import capture_workload, replay_workload
from repro.gpu.instructions import atomic_add, atomic_load, load, store
from repro.workloads.registry import get_workload

from tests.conftest import fresh_device

#: At least 3 racy and 3 race-free workloads, per the PR's test matrix.
RACY = ("matrix-mult", "reduction", "graph-color", "reduceMB")
RACE_FREE = ("warpAA", "b_reduce", "b_scan")


def _fingerprint(result):
    """Everything that must be invariant under the fast path."""
    return (
        result.status,
        result.races,
        sorted(str(t) for t in result.race_types),
        list(result.race_sites),
        result.native_time,
        result.total_time,
        result.breakdown,
    )


@pytest.mark.parametrize("name", RACY + RACE_FREE)
def test_replay_equality_fast_vs_slow(name):
    workload = get_workload(name)
    trace = capture_workload(workload, seeds=workload.seeds[:2])
    fast = replay_workload(
        trace, lambda: IGuard(config=IGuardConfig(fast_path=True)), name
    )
    slow = replay_workload(
        trace, lambda: IGuard(config=IGuardConfig(fast_path=False)), name
    )
    assert _fingerprint(fast) == _fingerprint(slow)


@pytest.mark.parametrize("name", RACY)
def test_racy_workloads_still_report_expected_races(name):
    workload = get_workload(name)
    trace = capture_workload(workload, seeds=workload.seeds[:2])
    fast = replay_workload(
        trace, lambda: IGuard(config=IGuardConfig(fast_path=True)), name
    )
    assert fast.races > 0


class TestElisionMechanics:
    """Direct unit coverage of the elision cache itself."""

    def _spin_kernel(self):
        # tid 0 bumps a flag; everyone else re-reads one granule in a
        # loop with no intervening synchronization — prime elision bait.
        def kern(ctx, flag, out):
            if ctx.tid == 0:
                yield store(out, 0, 7)
                yield atomic_add(flag, 0, 1)
            else:
                for _ in range(8):
                    v = yield atomic_load(flag, 0)
                yield store(out, 1 + ctx.tid, v)

        return kern

    def _run(self, config):
        dev = fresh_device()
        det = dev.add_tool(IGuard(config=config))
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 40, init=0)
        dev.launch(
            self._spin_kernel(), 1, 8, args=(flag, out), seed=3,
            split_probability=0.0,
        )
        return det

    def test_fast_path_elides_spin_reaccesses(self):
        det = self._run(IGuardConfig(fast_path=True))
        assert det.stats[0].accesses_elided > 0
        assert det.stats[0].accesses_elided <= det.stats[0].accesses_checked

    def test_fast_path_off_never_elides(self):
        det = self._run(IGuardConfig(fast_path=False))
        assert det.stats[0].accesses_elided == 0

    def test_history_ablation_disables_fast_path(self):
        det = self._run(IGuardConfig(fast_path=True, accessor_history=2))
        assert det.stats[0].accesses_elided == 0

    def test_stats_otherwise_identical(self):
        fast = self._run(IGuardConfig(fast_path=True)).stats[0]
        slow = self._run(IGuardConfig(fast_path=False)).stats[0]
        assert fast.accesses_checked == slow.accesses_checked
        assert fast.accesses_coalesced == slow.accesses_coalesced
        assert fast.preliminary_pass == slow.preliminary_pass
        assert fast.races_reported == slow.races_reported

    def test_default_config_uses_auto_mode(self):
        assert DEFAULT_CONFIG.fast_path == "auto"


class TestAdaptiveFastPath:
    """The "auto" mode: warm-up sampling, sticky per-kernel verdicts."""

    def _replay(self, name, config):
        workload = get_workload(name)
        trace = capture_workload(workload, seeds=workload.seeds[:2])
        return replay_workload(trace, lambda: IGuard(config=config), name)

    @pytest.mark.parametrize("name", RACY[:2] + RACE_FREE[:1])
    def test_auto_output_identical_to_forced_modes(self, name):
        auto = self._replay(name, IGuardConfig(fast_path="auto"))
        on = self._replay(name, IGuardConfig(fast_path=True))
        off = self._replay(name, IGuardConfig(fast_path=False))
        assert _fingerprint(auto) == _fingerprint(on) == _fingerprint(off)

    def test_low_elision_kernel_gets_disabled(self):
        # matrix-mult elides well under 5% of checks; a short warm-up
        # window must conclude the bookkeeping cannot pay for itself.
        workload = get_workload("matrix-mult")
        trace = capture_workload(workload, seeds=workload.seeds[:1])
        from repro.engine.replay import ReplayDevice, replay

        device = ReplayDevice(trace.gpu_config)
        tool = device.add_tool(
            IGuard(config=IGuardConfig(fast_path="auto", fast_path_warmup=64))
        )
        replay(trace.runs()[0][1], device=device)
        decisions = tool.cores[0].fast_decisions
        assert decisions and all(keep is False for keep in decisions.values())

    def test_high_elision_kernel_keeps_fast_path(self):
        # The spin kernel re-reads one granule in a tight loop: nearly
        # every post-warm-up check is a same-epoch hit.
        dev = fresh_device()
        det = dev.add_tool(
            IGuard(config=IGuardConfig(fast_path="auto", fast_path_warmup=16))
        )
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 40, init=0)

        def kern(ctx, flag, out):
            if ctx.tid == 0:
                yield store(out, 0, 7)
                yield atomic_add(flag, 0, 1)
            else:
                for _ in range(8):
                    v = yield atomic_load(flag, 0)
                yield store(out, 1 + ctx.tid, v)

        dev.launch(
            kern, 1, 8, args=(flag, out), seed=3, split_probability=0.0
        )
        decisions = det.cores[0].fast_decisions
        assert decisions and all(keep is True for keep in decisions.values())
        assert det.stats[0].accesses_elided > 0

    def test_unfinished_warmup_leaves_fast_path_armed(self):
        # A warm-up window larger than the whole kernel never closes: no
        # verdict is recorded, and elision keeps working meanwhile.
        dev = fresh_device()
        det = dev.add_tool(
            IGuard(config=IGuardConfig(fast_path="auto", fast_path_warmup=4096))
        )
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 40, init=0)

        def kern(ctx, flag, out):
            if ctx.tid == 0:
                yield store(out, 0, 7)
                yield atomic_add(flag, 0, 1)
            else:
                for _ in range(8):
                    v = yield atomic_load(flag, 0)
                yield store(out, 1 + ctx.tid, v)

        dev.launch(
            kern, 1, 8, args=(flag, out), seed=3, split_probability=0.0
        )
        assert det.cores[0].fast_decisions == {}
        assert det.stats[0].accesses_elided > 0

    def test_sticky_decision_skips_warmup_on_relaunch(self):
        workload = get_workload("matrix-mult")
        trace = capture_workload(workload, seeds=workload.seeds[:1])
        from repro.engine.replay import ReplayDevice, replay

        device = ReplayDevice(trace.gpu_config)
        tool = device.add_tool(
            IGuard(config=IGuardConfig(fast_path="auto", fast_path_warmup=64))
        )
        events = trace.runs()[0][1]
        replay(events, device=device)
        first = dict(tool.cores[0].fast_decisions)
        # Replaying the same kernels again must not re-arm the warm-up
        # (the decided kernel goes straight to its verdict).
        replay(events, device=device)
        assert tool.cores[0].fast_decisions == first
        assert tool.cores[0]._warmup_left == 0

    def test_invalid_fast_path_value_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            IGuardConfig(fast_path="always")
        with pytest.raises(ConfigError):
            IGuardConfig(fast_path_warmup=0)
        with pytest.raises(ConfigError):
            IGuardConfig(fast_path_break_even=1.5)


class TestDefaultArgumentHygiene:
    def test_cost_objects_not_shared_between_detectors(self):
        a, b = IGuard(), IGuard()
        assert a.costs is not b.costs
        assert a.contention_params is not b.contention_params
        assert a.uvm_params is not b.uvm_params
