"""Correctness + property tests for the CUB-style block primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IGuard
from repro.gpu.instructions import load, store
from repro.workloads.cub_primitives import (
    block_radix_sort,
    block_reduce,
    block_scan_exclusive,
    block_scan_inclusive,
    scratch_words_per_block,
)

from tests.conftest import fresh_device

BLOCK = 8


def run_primitive(values, body, grid=1, with_detector=True, seed=1):
    """Launch a kernel that applies ``body`` per thread; return outputs."""
    dev = fresh_device()
    det = dev.add_tool(IGuard()) if with_detector else None
    n = grid * BLOCK
    data = dev.alloc("data", n, init=0)
    data.load_list(list(values)[:n] + [0] * max(0, n - len(values)))
    out = dev.alloc("out", n, init=0)
    scratch = dev.alloc("scratch", grid * scratch_words_per_block(BLOCK), init=0)

    def kern(ctx, data, out, scratch):
        yield from body(ctx, data, out, scratch)

    dev.launch(kern, grid, BLOCK, args=(data, out, scratch), seed=seed)
    return out.to_list(), det


class TestBlockReduce:
    def _body(self, ctx, data, out, scratch):
        v = yield load(data, ctx.tid)
        total = yield from block_reduce(ctx, scratch, v)
        yield store(out, ctx.tid, total)

    def test_sum(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        out, det = run_primitive(values, self._body)
        assert out == [sum(values)] * BLOCK
        assert det.race_count == 0

    def test_two_blocks_independent(self):
        values = list(range(16))
        out, det = run_primitive(values, self._body, grid=2)
        assert out[:8] == [sum(range(8))] * 8
        assert out[8:] == [sum(range(8, 16))] * 8
        assert det.race_count == 0

    @given(st.lists(st.integers(-100, 100), min_size=BLOCK, max_size=BLOCK))
    @settings(max_examples=15, deadline=None)
    def test_sum_property(self, values):
        out, _ = run_primitive(values, self._body, with_detector=False)
        assert out == [sum(values)] * BLOCK


class TestBlockScan:
    def _inclusive(self, ctx, data, out, scratch):
        v = yield load(data, ctx.tid)
        prefix = yield from block_scan_inclusive(ctx, scratch, v)
        yield store(out, ctx.tid, prefix)

    def _exclusive(self, ctx, data, out, scratch):
        v = yield load(data, ctx.tid)
        prefix = yield from block_scan_exclusive(ctx, scratch, v)
        yield store(out, ctx.tid, prefix)

    def test_inclusive(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8]
        out, det = run_primitive(values, self._inclusive)
        assert out == [1, 3, 6, 10, 15, 21, 28, 36]
        assert det.race_count == 0

    def test_exclusive(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8]
        out, det = run_primitive(values, self._exclusive)
        assert out == [0, 1, 3, 6, 10, 15, 21, 28]
        assert det.race_count == 0

    @given(st.lists(st.integers(-50, 50), min_size=BLOCK, max_size=BLOCK))
    @settings(max_examples=15, deadline=None)
    def test_inclusive_property(self, values):
        out, _ = run_primitive(values, self._inclusive, with_detector=False)
        expect, acc = [], 0
        for v in values:
            acc += v
            expect.append(acc)
        assert out == expect

    @given(st.lists(st.integers(0, 50), min_size=BLOCK, max_size=BLOCK),
           st.integers(0, 7))
    @settings(max_examples=10, deadline=None)
    def test_scan_reduce_consistency(self, values, idx):
        # inclusive[i] - exclusive[i] == values[i]
        inc, _ = run_primitive(values, self._inclusive, with_detector=False)
        exc, _ = run_primitive(values, self._exclusive, with_detector=False)
        assert inc[idx] - exc[idx] == values[idx]


class TestBlockRadixSort:
    def _body(self, ctx, data, out, scratch):
        base = ctx.block_id * ctx.block_dim
        key = yield from block_radix_sort(ctx, scratch, base, data, key_bits=6)
        yield store(out, ctx.tid, key)

    def test_sorts(self):
        values = [13, 2, 60, 7, 7, 41, 0, 9]
        out, det = run_primitive(values, self._body)
        assert out == sorted(values)
        assert det.race_count == 0

    def test_in_place_result(self):
        values = [5, 4, 3, 2, 1, 0, 7, 6]
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        data = dev.alloc("data", BLOCK, init=0)
        data.load_list(values)
        scratch = dev.alloc("scratch", scratch_words_per_block(BLOCK), init=0)

        def kern(ctx, data, scratch):
            yield from block_radix_sort(ctx, scratch, 0, data, key_bits=3)

        dev.launch(kern, 1, BLOCK, args=(data, scratch), seed=2)
        assert data.to_list() == sorted(values)
        assert det.race_count == 0

    @given(st.lists(st.integers(0, 63), min_size=BLOCK, max_size=BLOCK))
    @settings(max_examples=10, deadline=None)
    def test_sort_property(self, values):
        out, _ = run_primitive(values, self._body, with_detector=False)
        assert out == sorted(values)

    def test_race_free_across_seeds(self):
        values = [9, 1, 8, 2, 7, 3, 6, 4]
        for seed in range(4):
            out, det = run_primitive(values, self._body, seed=seed)
            assert out == sorted(values)
            assert det.race_count == 0


class TestScratchSizing:
    def test_scratch_words(self):
        assert scratch_words_per_block(8) == 18
        assert scratch_words_per_block(32) == 66
