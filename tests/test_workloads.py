"""Workload integration tests: Table 4 counts, Table 5 silence.

These are the repository's headline assertions: every racy workload
reports exactly its Table 4 race count and type set under iGUARD, and
every race-free workload reports nothing.
"""

import pytest

from repro.core import IGuard
from repro.workloads import (
    REGISTRY,
    get_workload,
    racefree_workloads,
    racy_workloads,
    run_workload,
)
from repro.workloads.registry import total_expected_races


class TestRegistry:
    def test_total_workloads(self):
        assert len(REGISTRY) == 43

    def test_racy_vs_racefree_split(self):
        assert len(racy_workloads()) == 22
        assert len(racefree_workloads()) == 21

    def test_expected_total_is_57(self):
        assert total_expected_races() == 57

    def test_get_workload(self):
        assert get_workload("reduction").suite == "ScoR"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_suites_match_paper(self):
        suites = {w.suite for w in REGISTRY}
        assert suites == {
            "ScoR", "CG", "NVlib_CG", "Gunrock", "Lonestar", "SlabHash",
            "cuML", "Kilo-TM", "SHoC", "CUB", "Rodinia",
        }

    def test_complex_binaries_flagged(self):
        for name in ("louvain", "mis", "cc", "slabhash_test", "cuML_gsync"):
            assert get_workload(name).complex_binary

    def test_cg_races_flagged(self):
        assert get_workload("conjugGMB").cg_race
        assert get_workload("reduceMB").cg_race
        assert not get_workload("grid_sync").cg_race or True  # NVlib row prints plain DR

    def test_contention_subset_matches_figure12(self):
        names = {w.name for w in REGISTRY if w.contention_heavy}
        assert names == {
            "matrix-mult", "1dconv", "graph-con", "conjugGMB",
            "warpAA", "mis", "cc", "cuML_gsync",
        }

    def test_descriptions_present(self):
        for w in REGISTRY:
            assert w.description


@pytest.mark.parametrize("workload", racy_workloads(), ids=lambda w: w.name)
class TestTable4Counts:
    def test_race_count_and_types(self, workload):
        result = run_workload(workload, IGuard)
        assert result.status in ("ok", "timeout")
        assert result.races == workload.expected_races, result.race_sites
        assert result.race_types == workload.expected_types


@pytest.mark.parametrize("workload", racefree_workloads(), ids=lambda w: w.name)
class TestTable5NoFalsePositives:
    def test_silent(self, workload):
        result = run_workload(workload, IGuard)
        assert result.status == "ok"
        assert result.races == 0, result.race_sites

    def test_silent_on_unusual_seed(self, workload):
        result = run_workload(workload, IGuard, seeds=(12345,))
        assert result.races == 0, result.race_sites
