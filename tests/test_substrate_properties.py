"""Property tests for substrate invariants: memory model and scheduler."""

from hypothesis import given, settings, strategies as st

from repro.gpu.arch import TEST_GPU
from repro.gpu.device import Device
from repro.gpu.instructions import AtomicOp, Scope, atomic_add, compute, load, store, syncthreads
from repro.gpu.memory import GlobalMemory

MiB = 1024 * 1024


class TestWeakMemoryProperties:
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 100), st.integers(0, 3)),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_flush_all_converges_to_sc_for_racefree_stores(self, writes):
        """After flushing, weak memory equals a sequentially-consistent
        replay — for *race-free* store sequences (each address written by
        one block only).  Racing cross-block stores may resolve
        differently, which is precisely the weak behaviour the mode
        models, so they are excluded by construction here.
        """
        weak = GlobalMemory(4 * MiB, weak_visibility=True)
        strong = GlobalMemory(4 * MiB, weak_visibility=False)
        wa = weak.alloc("a", 8, init=0)
        sa = strong.alloc("a", 8, init=0)
        for slot, value, block in writes:
            index = block * 2 + slot  # per-block private addresses
            weak.device_store(wa.addr_of(index), value, block_id=block)
            strong.device_store(sa.addr_of(index), value, block_id=block)
        weak.flush_all()
        assert wa.to_list() == sa.to_list()

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 9)), min_size=1, max_size=20
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_own_block_read_your_writes(self, ops):
        """A block always observes its own latest store (store buffer
        forwarding), regardless of visibility mode."""
        mem = GlobalMemory(4 * MiB, weak_visibility=True)
        arr = mem.alloc("a", 4, init=0)
        latest = {}
        for index, value in ops:
            mem.device_store(arr.addr_of(index), value, block_id=0)
            latest[index] = value
        for index, value in latest.items():
            assert mem.device_load(arr.addr_of(index), block_id=0) == value

    @given(adds=st.lists(st.integers(1, 5), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_device_atomics_never_lose_updates(self, adds):
        mem = GlobalMemory(4 * MiB, weak_visibility=True)
        arr = mem.alloc("a", 1, init=0)
        for i, value in enumerate(adds):
            mem.device_atomic(
                AtomicOp.ADD, arr.addr_of(0), value, block_id=i % 3,
                scope=Scope.DEVICE,
            )
        mem.flush_all()
        assert arr.read(0) == sum(adds)


class TestSchedulerProperties:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_every_thread_completes(self, seed):
        dev = Device(TEST_GPU)
        out = dev.alloc("out", 16, init=0)

        def kern(ctx, out):
            yield compute(1)
            yield store(out, ctx.tid, 1)

        run = dev.launch(kern, 2, 8, args=(out,), seed=seed)
        assert not run.timed_out
        assert out.to_list() == [1] * 16

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_atomics_linearize_under_any_schedule(self, seed):
        dev = Device(TEST_GPU)
        counter = dev.alloc("counter", 1, init=0)
        tickets = dev.alloc("tickets", 16, init=-1)

        def kern(ctx, counter, tickets):
            ticket = yield atomic_add(counter, 0, 1)
            yield store(tickets, ctx.tid, ticket)

        dev.launch(kern, 2, 8, args=(counter, tickets), seed=seed)
        # Tickets form a permutation of 0..15: atomicity held.
        assert sorted(tickets.to_list()) == list(range(16))

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_barrier_phase_invariant(self, seed):
        """No thread's post-barrier read can observe a pre-barrier value
        once any thread wrote its slot before the barrier."""
        dev = Device(TEST_GPU)
        data = dev.alloc("data", 8, init=-1)
        out = dev.alloc("out", 8, init=0)

        def kern(ctx, data, out):
            yield store(data, ctx.tid, ctx.tid)
            yield syncthreads()
            v = yield load(data, (ctx.tid + 3) % ctx.block_dim)
            yield store(out, ctx.tid, v)

        dev.launch(kern, 1, 8, args=(data, out), seed=seed)
        assert out.to_list() == [(i + 3) % 8 for i in range(8)]

    @given(seed=st.integers(0, 100_000), split=st.floats(0.0, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_split_probability_never_affects_results(self, seed, split):
        def run(split_probability):
            dev = Device(TEST_GPU)
            data = dev.alloc("data", 8, init=0)

            def kern(ctx, data):
                v = yield load(data, ctx.tid)
                yield store(data, ctx.tid, v + ctx.tid)

            dev.launch(kern, 1, 8, args=(data,), seed=seed,
                       split_probability=split_probability)
            return data.to_list()

        # Private slots: ITS batching choices must not change outputs.
        assert run(split) == run(0.0) == list(range(8))
