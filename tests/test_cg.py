"""Tests for the Cooperative Groups layer."""

import pytest

from repro import cg
from repro.core import IGuard, RaceType
from repro.gpu.instructions import load, store

from tests.conftest import fresh_device


def _alloc_barrier(dev):
    return dev.alloc("grid_barrier", cg.GridBarrier.NUM_WORDS, init=0)


class TestGroups:
    def test_thread_block_rank(self):
        dev = fresh_device()
        out = dev.alloc("out", 8, init=-1)

        def kern(ctx, out):
            block = cg.this_thread_block(ctx)
            yield store(out, ctx.tid, block.thread_rank())

        dev.launch(kern, 2, 4, args=(out,))
        assert out.to_list() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_sync_is_barrier(self):
        dev = fresh_device()
        data = dev.alloc("data", 4, init=0)
        out = dev.alloc("out", 4, init=0)

        def kern(ctx, data, out):
            block = cg.this_thread_block(ctx)
            yield store(data, ctx.tid, ctx.tid * 2)
            yield from block.sync()
            v = yield load(data, (ctx.tid + 1) % 4)
            yield store(out, ctx.tid, v)

        dev.launch(kern, 1, 4, args=(data, out), seed=5)
        assert out.to_list() == [2, 4, 6, 0]

    def test_tiled_partition_sync(self):
        dev = fresh_device()
        data = dev.alloc("data", 4, init=0)
        out = dev.alloc("out", 4, init=0)

        def kern(ctx, data, out):
            block = cg.this_thread_block(ctx)
            tile = cg.tiled_partition(block, 4)
            yield store(data, tile.thread_rank(), ctx.lane + 7)
            yield from tile.sync()
            v = yield load(data, (tile.thread_rank() + 1) % 4)
            yield store(out, ctx.lane, v)

        dev.launch(kern, 1, 4, args=(data, out), seed=3)
        assert out.to_list() == [8, 9, 10, 7]

    def test_grid_group_size_and_rank(self):
        dev = fresh_device()
        bar = _alloc_barrier(dev)
        out = dev.alloc("out", 8, init=0)

        def kern(ctx, bar, out):
            grid = cg.this_grid(ctx, cg.GridBarrier(bar))
            yield store(out, grid.thread_rank(), grid.size)

        dev.launch(kern, 2, 4, args=(bar, out))
        assert out.to_list() == [8] * 8


class TestGridSync:
    def _run(self, racy, seed=1):
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        bar = _alloc_barrier(dev)
        data = dev.alloc("data", 8, init=0)
        out = dev.alloc("out", 8, init=0)

        def kern(ctx, bar, data, out):
            grid = cg.this_grid(ctx, cg.GridBarrier(bar))
            yield store(data, ctx.tid, ctx.tid + 1)
            if racy:
                yield from grid.sync_racy()
            else:
                yield from grid.sync()
            partner = (ctx.tid + ctx.block_dim) % ctx.num_threads
            v = yield load(data, partner)
            yield store(out, ctx.tid, v)

        dev.launch(kern, 2, 4, args=(bar, data, out), seed=seed)
        return det, out

    def test_correct_sync_race_free_and_functional(self):
        det, out = self._run(racy=False)
        assert det.race_count == 0
        assert out.to_list() == [5, 6, 7, 8, 1, 2, 3, 4]

    def test_racy_sync_reports_dr(self):
        det, _ = self._run(racy=True)
        assert det.race_count == 1
        assert {t for _, t in det.races.sites()} == {RaceType.INTER_BLOCK}

    def test_correct_sync_race_free_across_seeds(self):
        for seed in range(6):
            det, _ = self._run(racy=False, seed=seed)
            assert det.race_count == 0, f"false positive at seed {seed}"

    def test_barrier_reusable(self):
        # Generation counting: the same barrier state supports many syncs.
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        bar = _alloc_barrier(dev)
        data = dev.alloc("data", 8, init=0)

        def kern(ctx, bar, data):
            grid = cg.this_grid(ctx, cg.GridBarrier(bar))
            for round_ in range(3):
                yield store(data, ctx.tid, round_)
                yield from grid.sync()

        run = dev.launch(kern, 2, 4, args=(bar, data), seed=2)
        assert not run.timed_out
        assert det.race_count == 0
        assert data.to_list() == [2] * 8

    def test_grid_barrier_alloc_helper(self):
        dev = fresh_device()
        barrier = cg.GridBarrier.alloc(dev)
        assert len(barrier.state) == cg.GridBarrier.NUM_WORDS
