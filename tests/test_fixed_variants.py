"""The acknowledged fixes, applied: the same workloads go race-free.

The grid-sync family of Table 4 bugs (NVlib's grid_sync, CUB's
cub_gridbar, the CG suite's conjugGMB) were acknowledged and fixed by
their developers — the fix being a per-thread device fence before the
barrier.  Each workload here runs in its *fixed* configuration and must
report zero races, showing the detector separates the bug from the fix
on the actual evaluation code.
"""

import pytest

from repro.core import IGuard
from repro.gpu.device import Device
from repro.workloads.base import SIM_GPU
from repro.workloads.cg_suite import run_conjug_gmb_fixed
from repro.workloads.cub import run_cub_gridbar_fixed
from repro.workloads.nvlib import run_grid_sync_fixed

FIXED_DRIVERS = {
    "grid_sync": run_grid_sync_fixed,
    "cub_gridbar": run_cub_gridbar_fixed,
    "conjugGMB": run_conjug_gmb_fixed,
}


@pytest.mark.parametrize("name,driver", FIXED_DRIVERS.items())
class TestFixedVariants:
    def test_race_free(self, name, driver):
        device = Device(SIM_GPU)
        detector = device.add_tool(IGuard())
        driver(device, seed=1)
        assert detector.race_count == 0, detector.races.sites()

    def test_race_free_alternate_seed(self, name, driver):
        device = Device(SIM_GPU)
        detector = device.add_tool(IGuard())
        driver(device, seed=23)
        assert detector.race_count == 0, detector.races.sites()


class TestFixRemovesExactlyTheBug:
    """The racy and fixed variants differ by exactly the reported site."""

    @pytest.mark.parametrize("name,driver", FIXED_DRIVERS.items())
    def test_racy_variant_still_reports(self, name, driver):
        from repro.workloads import get_workload, run_workload
        racy = run_workload(get_workload(name), IGuard, seeds=(1,))
        assert racy.races == get_workload(name).expected_races
