"""Tests for the live telemetry pipeline: sampler, exposition, watchdog,
heartbeats, and the per-phase sampling profiler.

The pipeline is a *pure reader* of the metrics registry and the
supervisor's heartbeat channel — nothing here may perturb detection.
The byte-identity test at the bottom (and the CI ``telemetry`` job)
enforces that; the rest pins the formats downstream tooling scrapes:
the delta-encoded ``telemetry.jsonl`` series, the OpenMetrics ``/metrics``
payload (golden fixture + exact parse round-trip), the ``/healthz``
verdict, and the collapsed-stack attribution files.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from benchmarks.validate_schema import validate
from repro.obs import metrics as obs_metrics
from repro.obs import openmetrics
from repro.obs import profiler as obs_profiler
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    MetricsServer,
    family_of,
    parse_openmetrics,
    render_openmetrics,
    snapshot_to_families,
    validate_openmetrics,
)
from repro.obs.telemetry import (
    Heartbeats,
    TelemetrySampler,
    approx_quantile,
)
from repro.obs.watchdog import Watchdog, WatchdogConfig

GOLDEN = Path(__file__).parent / "golden"

TELEMETRY_SCHEMA = json.loads(
    (Path(__file__).parent.parent
     / "benchmarks" / "schemas" / "telemetry.schema.json").read_text()
)


@pytest.fixture
def obs_off():
    """Guarantee the global recorder is off and clean around a test."""
    obs_metrics.set_enabled(False)
    obs_metrics.get_registry().reset()
    telemetry.HEARTBEATS.enabled = False
    telemetry.HEARTBEATS.reset()
    yield
    obs_metrics.set_enabled(False)
    obs_metrics.get_registry().reset()
    telemetry.HEARTBEATS.enabled = False
    telemetry.HEARTBEATS.reset()


def _sampler(reg, **kwargs):
    """A sampler with a manual baseline, as if start() had just run."""
    s = TelemetrySampler(registry=reg, **kwargs)
    s._previous = reg.snapshot()
    s._last_tick = time.monotonic()
    return s


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------


class TestHeartbeats:
    def test_disabled_by_default(self):
        assert telemetry.HEARTBEATS.enabled is False

    def test_update_and_snapshot(self):
        hb = Heartbeats()
        hb.update(101, state="running", cell="w:s1", started=123.0)
        hb.update(202, state="idle")
        snap = hb.snapshot()
        assert [w["pid"] for w in snap] == [101, 202]
        assert snap[0]["state"] == "running"
        assert snap[0]["cell"] == "w:s1"
        assert all("updated" in w for w in snap)

    def test_finish_cell_clears_cell_and_counts(self):
        hb = Heartbeats()
        hb.update(7, state="running", cell="w:s1", started=1.0)
        hb.finish_cell(7, ok=True)
        (worker,) = hb.snapshot()
        assert worker["state"] == "idle"
        assert worker["cells_done"] == 1
        assert "cell" not in worker and "started" not in worker

    def test_snapshot_is_a_copy(self):
        hb = Heartbeats()
        hb.update(7, state="running")
        hb.snapshot()[0]["state"] = "mutated"
        assert hb.snapshot()[0]["state"] == "running"

    def test_remove(self):
        hb = Heartbeats()
        hb.update(7, state="running")
        hb.remove(7)
        assert hb.snapshot() == []


# ---------------------------------------------------------------------------
# Delta sampling and the ring buffer
# ---------------------------------------------------------------------------


class TestSampler:
    def test_counter_delta_not_absolute(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(10)
        s = _sampler(reg)
        reg.counter("c").inc(3)
        sample = s.tick()
        assert sample.counters == {"c": 3}

    def test_sparse_idle_tick(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        s = _sampler(reg)
        sample = s.tick()  # nothing moved since the baseline
        assert sample.counters == {}
        assert sample.histograms == {}

    def test_gauge_reports_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.0)
        s = _sampler(reg)
        reg.gauge("g").set(9.0)
        assert s.tick().gauges["g"] == 9.0

    def test_histogram_bucket_deltas(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        s = _sampler(reg)
        reg.histogram("h").observe(1.0)
        reg.histogram("h").observe(4.0)
        hist = s.tick().histograms["h"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(5.0)
        assert sum(hist["buckets"].values()) == 2

    def test_counter_shrink_reports_absolute(self):
        # A registry reset mid-run must not produce negative deltas.
        reg = MetricsRegistry()
        reg.counter("c").inc(100)
        s = _sampler(reg)
        reg.reset()
        reg.counter("c").inc(4)
        assert s.tick().counters == {"c": 4}

    def test_ring_is_bounded_and_counts_drops(self):
        reg = MetricsRegistry()
        s = _sampler(reg, capacity=3)
        for i in range(5):
            reg.counter("c").inc()
            s.tick()
        assert len(s.samples()) == 3
        assert s.dropped == 2
        assert [x.seq for x in s.samples()] == [3, 4, 5]

    def test_seq_monotonic_and_interval_covered(self):
        reg = MetricsRegistry()
        s = _sampler(reg)
        a = s.tick(now=None)
        b = s.tick(now=None)
        assert b.seq == a.seq + 1
        assert b.interval >= 0.0

    def test_write_jsonl_schema_valid(self, tmp_path):
        reg = MetricsRegistry()
        s = _sampler(reg, interval=0.25)
        reg.counter("detector.races").inc(2)
        s.tick()
        out = tmp_path / "telemetry.jsonl"
        wd = Watchdog()
        s.write_jsonl(out, health=wd.health_block())
        lines = out.read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds[0] == "header" and kinds[-1] == "health"
        assert "sample" in kinds
        for line in lines:
            assert validate(json.loads(line), TELEMETRY_SCHEMA) == []

    def test_start_stop_background_thread(self, obs_off):
        reg = MetricsRegistry()
        s = TelemetrySampler(registry=reg, interval=0.02)
        s.start()
        try:
            assert telemetry.HEARTBEATS.enabled is True
            reg.counter("c").inc(3)
            time.sleep(0.08)
        finally:
            s.stop()
        assert telemetry.HEARTBEATS.enabled is False
        assert s.totals().get("c", {}).get("value") == 3
        assert any(x.counters.get("c") for x in s.samples())

    def test_module_level_lifecycle(self, obs_off):
        s = telemetry.start_sampler(interval=5.0)
        assert telemetry.active_sampler() is s
        assert telemetry.start_sampler(interval=5.0) is s  # idempotent
        assert telemetry.stop_sampler() is s
        assert telemetry.active_sampler() is None


class TestApproxQuantile:
    def test_empty_histogram_is_none(self):
        assert approx_quantile({"count": 0, "buckets": {}}, 0.5) is None

    def test_picks_bucket_upper_bound(self):
        h = MetricsRegistry().histogram("h")
        for v in (1.0, 1.5, 100.0):
            h.observe(v)
        p50 = approx_quantile(h.snapshot(), 0.5)
        assert p50 == math.ldexp(1.0, math.frexp(1.5)[1])


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------


def _fixture_registry():
    reg = MetricsRegistry()
    reg.counter("detector.races").inc(3)
    reg.counter("parallel.worker.101.cells").inc(4)
    reg.counter("parallel.worker.202.cells").inc(2)
    reg.counter("shard.0.events").inc(1200)
    reg.counter("shard.1.events").inc(800)
    reg.gauge("shard.imbalance").set(1.5)
    h = reg.histogram("detector.check_seconds")
    for v in (0.25, 0.5, 1.0, 4.0):
        h.observe(v)
    reg.histogram("detector.empty_hist")
    return reg


_FIXTURE_WORKERS = [
    {"pid": 101, "state": "running", "cells_done": 4, "cell_seconds": 2.5},
    {"pid": 202, "state": "idle", "cells_done": 2, "cell_seconds": 1.25},
]


class TestExposition:
    def test_label_folding(self):
        assert family_of("parallel.worker.4242.cells") == (
            "iguard_parallel_worker_cells", {"pid": "4242"}
        )
        assert family_of("shard.3.drain_depth") == (
            "iguard_shard_drain_depth", {"shard": "3"}
        )
        assert family_of("detector.races") == ("iguard_detector_races", {})

    def test_golden_fixture(self):
        text = render_openmetrics(
            _fixture_registry().snapshot(), heartbeats=_FIXTURE_WORKERS
        )
        assert text == (GOLDEN / "openmetrics_fixture.txt").read_text()

    def test_golden_fixture_is_valid_openmetrics(self):
        text = (GOLDEN / "openmetrics_fixture.txt").read_text()
        assert validate_openmetrics(text) == []

    def test_parse_is_exact_inverse_of_render(self):
        reg = _fixture_registry()
        reg.histogram("detector.extremes").observe(1e-9)
        reg.histogram("detector.extremes").observe(7e11)
        snap = reg.snapshot()
        assert parse_openmetrics(render_openmetrics(snap)) == (
            snapshot_to_families(snap)
        )

    def test_empty_histogram_has_no_min_max_and_no_nan(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        text = render_openmetrics(reg.snapshot())
        assert "iguard_h_min" not in text and "iguard_h_max" not in text
        assert "nan" not in text.lower() and "inf " not in text
        point = parse_openmetrics(text)["iguard_h"]["points"][()]
        assert point["count"] == 0
        assert point.get("min") is None and point.get("max") is None

    def test_counter_total_suffix_and_eof(self):
        reg = MetricsRegistry()
        reg.counter("detector.races").inc()
        text = render_openmetrics(reg.snapshot())
        assert "iguard_detector_races_total 1" in text
        assert text.rstrip().endswith("# EOF")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.4, 0.6, 3.0):
            reg.histogram("h").observe(v)
        lines = render_openmetrics(reg.snapshot()).splitlines()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines if "iguard_h_bucket" in line
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 3  # the +Inf bucket sees everything

    def test_type_collision_is_an_error(self):
        # A per-shard gauge must not fold into an existing unlabeled
        # family of a different type (the shard.queue_depth hazard).
        snap = {
            "shard.queue_depth": {"type": "histogram", "count": 0,
                                  "sum": 0.0, "min": None, "max": None,
                                  "buckets": {}},
            "shard.0.queue_depth": {"type": "gauge", "value": 1.0},
        }
        with pytest.raises(ValueError, match="family"):
            snapshot_to_families(snap)

    def test_validate_rejects_missing_eof_and_garbage(self):
        assert validate_openmetrics("# TYPE iguard_x counter\niguard_x_total 1\n")
        assert validate_openmetrics(
            "# TYPE iguard_x counter\nnot a sample\n# EOF\n"
        )
        assert parse_openmetrics(
            "# TYPE iguard_x counter\niguard_x_total 1\n# EOF\n"
        )


# ---------------------------------------------------------------------------
# The embedded scrape server
# ---------------------------------------------------------------------------


class TestMetricsServer:
    @pytest.fixture
    def server(self):
        reg = MetricsRegistry()
        reg.counter("detector.races").inc(2)
        wd = Watchdog()
        srv = MetricsServer(
            port=0,
            host="127.0.0.1",
            registry=reg,
            health_provider=wd.health_block,
            heartbeats_provider=lambda: [
                {"pid": 5, "state": "running", "cells_done": 0}
            ],
        ).start()
        yield srv
        srv.stop()

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()

    def test_port_zero_binds_a_real_port(self, server):
        assert server.port > 0

    def test_metrics_endpoint_parses(self, server):
        status, text = self._get(server, "/metrics")
        assert status == 200
        assert validate_openmetrics(text) == []
        families = parse_openmetrics(text)
        assert families["iguard_detector_races"]["points"][()] == 2
        assert (("pid", "5"),) in families["iguard_worker_up"]["points"]

    def test_healthz_endpoint(self, server):
        status, text = self._get(server, "/healthz")
        payload = json.loads(text)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["findings"] == []
        assert payload["workers"][0]["pid"] == 5

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/nope")
        assert err.value.code == 404


# ---------------------------------------------------------------------------
# Run-health watchdog
# ---------------------------------------------------------------------------


def _sample(interval=1.0, counters=None):
    return telemetry.TelemetrySample(
        seq=1, t=time.time(), interval=interval,
        counters=counters or {}, gauges={}, histograms={},
    )


class TestWatchdog:
    def test_worker_stall_fires_and_dedups(self):
        wd = Watchdog(WatchdogConfig(stall_s=1.0))
        now = time.time()
        hb = [{"pid": 9, "state": "running", "cell": "w:s1",
               "started": now - 5.0}]
        assert wd.observe(_sample(), hb, {}, now=now)  # first tick fires
        assert wd.observe(_sample(), hb, {}, now=now + 1)  # dedup: no new
        (finding,) = wd.findings
        assert finding.rule == "worker_stall"
        assert finding.subject == "worker:9"
        assert finding.count == 2
        assert finding.worst >= 5.0
        assert wd.status == "warn"

    def test_idle_worker_never_stalls(self):
        wd = Watchdog(WatchdogConfig(stall_s=1.0))
        hb = [{"pid": 9, "state": "idle"}]
        assert wd.observe(_sample(), hb, {}) == []
        assert wd.status == "ok"

    def test_shard_imbalance_gated_on_min_events(self):
        wd = Watchdog(WatchdogConfig(imbalance_ratio=2.0,
                                     imbalance_min_events=1000))
        totals = {
            "shard.events_routed": {"type": "counter", "value": 10},
            "shard.imbalance": {"type": "gauge", "value": 9.0},
        }
        assert wd.observe(_sample(), [], totals) == []  # too few events
        totals["shard.events_routed"]["value"] = 5000
        (finding,) = wd.observe(_sample(), [], totals)
        assert finding.rule == "shard_imbalance"

    def test_fastpath_churn(self):
        wd = Watchdog(WatchdogConfig(churn_ratio=0.5, churn_min_decisions=8))
        totals = {
            "detector.fastpath.auto_kept": {"type": "counter", "value": 2},
            "detector.fastpath.auto_disabled": {"type": "counter",
                                                "value": 8},
        }
        (finding,) = wd.observe(_sample(), [], totals)
        assert finding.rule == "fastpath_churn"
        assert finding.detail["disabled"] == 8

    def test_retry_burn_scales_to_per_minute(self):
        wd = Watchdog(WatchdogConfig(retries_per_min=6.0))
        # 1 retry in a 1s window = 60/min: burning.
        (finding,) = wd.observe(
            _sample(interval=1.0, counters={"parallel.retries": 1}), [], {}
        )
        assert finding.rule == "retry_burn"
        # 1 retry in a 60s window = 1/min: fine.
        wd2 = Watchdog(WatchdogConfig(retries_per_min=6.0))
        assert wd2.observe(
            _sample(interval=60.0, counters={"parallel.retries": 1}), [], {}
        ) == []

    def test_config_from_env_spec(self):
        cfg = WatchdogConfig.from_env("stall_s=2.5,churn_ratio=0.9")
        assert cfg.stall_s == 2.5
        assert cfg.churn_ratio == 0.9
        assert cfg.imbalance_ratio == WatchdogConfig().imbalance_ratio

    def test_health_block_shape(self):
        wd = Watchdog(WatchdogConfig(stall_s=1.0))
        wd.observe(_sample(), [{"pid": 9, "state": "running",
                                "started": time.time() - 9.0}], {})
        block = wd.health_block()
        assert block["status"] == "warn"
        assert block["ticks"] == 1
        assert block["rules"]["stall_s"] == 1.0
        assert block["findings"][0]["rule"] == "worker_stall"
        assert json.dumps(block)  # machine-readable: JSON-serializable


# ---------------------------------------------------------------------------
# Per-phase sampling profiler
# ---------------------------------------------------------------------------


def _spin_in_phase(prof, name, stop):
    """A worker that burns CPU inside a profiler phase until told to stop."""
    prof.push_phase(name)
    try:
        while not stop.is_set():
            math.sqrt(12345.0)
    finally:
        prof.pop_phase()


class TestProfiler:
    def _sample_worker(self, prof, name, want=3):
        """Sample a spinning phase-scoped worker from this thread."""
        stop = threading.Event()
        worker = threading.Thread(target=_spin_in_phase,
                                  args=(prof, name, stop))
        worker.start()
        try:
            hits, deadline = 0, time.time() + 5.0
            while hits < want and time.time() < deadline:
                hits += prof.sample_once()
                time.sleep(0.002)
        finally:
            stop.set()
            worker.join()
        return hits

    def test_phase_scoped_attribution(self):
        prof = obs_profiler.SamplingProfiler(interval=0.01)
        hits = self._sample_worker(prof, "bench:spin")
        attribution = prof.attribution()
        assert hits >= 3
        assert attribution["samples"] >= 3
        assert set(attribution["phases"]) == {"bench:spin"}
        phase = attribution["phases"]["bench:spin"]
        assert phase["share"] == pytest.approx(1.0)
        assert phase["seconds"] == pytest.approx(
            phase["samples"] * prof.interval
        )

    def test_unphased_threads_are_ignored(self):
        prof = obs_profiler.SamplingProfiler(interval=0.01)
        assert prof.sample_once() == 0
        assert prof.attribution()["phases"] == {}

    def test_collapsed_stack_format(self, tmp_path):
        prof = obs_profiler.SamplingProfiler(interval=0.01)
        self._sample_worker(prof, "bench:fmt")
        out = tmp_path / "flame.collapsed"
        prof.write_collapsed(out)
        lines = out.read_text().splitlines()
        assert lines, "sampling a spinning phase must record stacks"
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("bench:fmt")
            assert int(count) >= 1

    def test_phase_contextmanager_nests(self):
        prof = obs_profiler.SamplingProfiler(interval=0.01)
        obs_profiler._PROFILER = prof
        try:
            with obs_profiler.phase("outer"):
                with obs_profiler.phase("inner"):
                    assert prof.current_phase() == "inner"
                assert prof.current_phase() == "outer"
            assert prof.current_phase() == "(unattributed)"
        finally:
            obs_profiler._PROFILER = None

    def test_start_stop_background_thread(self):
        prof = obs_profiler.start_profiler(interval=0.005)
        try:
            with obs_profiler.phase("bench:bg"):
                time.sleep(0.05)
        finally:
            obs_profiler.stop_profiler()
        assert prof.attribution()["phases"].get("bench:bg", {}).get(
            "samples", 0
        ) > 0


# ---------------------------------------------------------------------------
# Forensics JSON: the explain golden file
# ---------------------------------------------------------------------------


class TestExplainJson:
    def test_explain_json_matches_golden(self, capsys):
        from repro.experiments.cli import main

        rc = main([
            "explain", "--workload", "reduction", "--seeds", "1",
            "--max-reports", "1", "--format", "json",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        golden = json.loads((GOLDEN / "explain_reduction_seed1.json").read_text())
        assert json.loads(out) == golden

    def test_no_match_still_emits_json(self, capsys):
        from repro.obs.forensics import main

        rc = main([
            "no_such_site:999", "--workload", "reduction",
            "--seeds", "1", "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["matched"] == 0 and payload["reports"] == []


# ---------------------------------------------------------------------------
# The invariant: telemetry changes no detection output.
# ---------------------------------------------------------------------------


class TestTelemetryByteIdentity:
    def test_report_identical_with_sampler_running(self, tmp_path, obs_off):
        from repro.workloads.runner import main

        on, off = tmp_path / "on.json", tmp_path / "off.json"
        rc_on = main([
            "--workload", "reduction", "--seeds", "1,2", "--shards", "2",
            "--report-json", str(on),
            "--telemetry-out", str(tmp_path / "t.jsonl"),
            "--telemetry-interval", "0.05",
        ])
        obs_metrics.set_enabled(False)
        obs_metrics.get_registry().reset()
        rc_off = main([
            "--workload", "reduction", "--seeds", "1,2", "--shards", "2",
            "--report-json", str(off),
        ])
        assert rc_on == rc_off
        assert on.read_bytes() == off.read_bytes()
        # ... and the side artifact validates line by line.
        for line in (tmp_path / "t.jsonl").read_text().splitlines():
            assert validate(json.loads(line), TELEMETRY_SCHEMA) == []
