"""The parallel suite executor merges identically to the serial path."""

from repro.core import IGuard
from repro.engine.parallel import parallel_map
from repro.workloads import get_workload, run_suite, run_workload
from repro.workloads.runner import _SeedTask, _run_seed_task, detector_name


class TestParallelMap:
    def test_inline_fallbacks(self):
        assert parallel_map(abs, [-1, -2, -3], workers=1) == [1, 2, 3]
        assert parallel_map(abs, [-5], workers=8) == [5]
        assert parallel_map(abs, [], workers=8) == []

    def test_order_preserved_across_processes(self):
        items = list(range(20))
        assert parallel_map(abs, items, workers=4) == items


class TestDetectorName:
    def test_class_factory_is_not_instantiated(self):
        class Exploding(IGuard):
            name = "exploding"

            def __init__(self):
                raise AssertionError("factory must not be called for a name")

        assert detector_name(Exploding) == "exploding"

    def test_opaque_callable_falls_back(self):
        assert detector_name(lambda: IGuard()) == IGuard.name

    def test_none_is_native(self):
        assert detector_name(None) == "native"


class TestParallelEqualsSerial:
    """Satellite acceptance: workers=4 merges identically to workers=1."""

    def test_run_workload_equivalence(self):
        workload = get_workload("b_scan")
        serial = run_workload(workload, IGuard, seeds=(1, 2, 3, 4))
        parallel = run_workload(workload, IGuard, seeds=(1, 2, 3, 4), workers=4)
        assert parallel == serial

    def test_run_workload_racy_equivalence(self):
        workload = get_workload("graph-color")
        serial = run_workload(workload, IGuard)
        parallel = run_workload(workload, IGuard, workers=4)
        assert parallel == serial
        assert parallel.races > 0

    def test_run_suite_equivalence(self):
        requests = [
            (get_workload("b_scan"), IGuard, None),
            (get_workload("1dconv"), IGuard, None),
            (get_workload("b_reduce"), None, (1,)),
        ]
        serial = run_suite(requests, workers=1)
        parallel = run_suite(requests, workers=4)
        assert parallel == serial
        assert [r.workload for r in parallel] == ["b_scan", "1dconv", "b_reduce"]

    def test_run_suite_complex_binary_precheck(self):
        from repro.baselines import Barracuda

        workload = get_workload("louvain")
        assert workload.complex_binary
        serial = run_suite([(workload, Barracuda, None)], workers=1)
        parallel = run_suite([(workload, Barracuda, None)], workers=4)
        assert serial == parallel
        assert parallel[0].status == "unsupported"

    def test_seed_task_roundtrip(self):
        # The worker-side trampoline reproduces the in-process outcome.
        workload = get_workload("1dconv")
        from repro.workloads.base import SIM_GPU
        from repro.workloads.runner import _run_one_seed

        task = _SeedTask(workload, IGuard, SIM_GPU, seed=1)
        assert _run_seed_task(task) == _run_one_seed(workload, IGuard, SIM_GPU, 1)
