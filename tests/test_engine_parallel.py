"""The parallel suite executor merges identically to the serial path —
and survives crashed, hung, and flaky workers."""

import logging
import time

import pytest

from repro.core import IGuard
from repro.engine.parallel import parallel_map
from repro.errors import RetryExhaustedError
from repro.faults import chaos
from repro.workloads import get_workload, run_suite, run_workload
from repro.workloads.runner import _SeedTask, _run_seed_task, detector_name


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _always_fail(item):
    raise ValueError(f"boom on {item}")


class _CapturingHandler(logging.Handler):
    def __init__(self):
        super().__init__()
        self.messages = []

    def emit(self, record):
        self.messages.append(record.getMessage())


@pytest.fixture
def parallel_log():
    """Capture ``iguard.parallel`` warnings (the facade never propagates
    to the root logger, so pytest's caplog cannot see them)."""
    handler = _CapturingHandler()
    logger = logging.getLogger("iguard.parallel")
    logger.addHandler(handler)
    try:
        yield handler.messages
    finally:
        logger.removeHandler(handler)


class TestParallelMap:
    def test_inline_fallbacks(self):
        assert parallel_map(abs, [-1, -2, -3], workers=1) == [1, 2, 3]
        assert parallel_map(abs, [-5], workers=8) == [5]
        assert parallel_map(abs, [], workers=8) == []

    def test_order_preserved_across_processes(self):
        items = list(range(20))
        assert parallel_map(abs, items, workers=4) == items


class TestDetectorName:
    def test_class_factory_is_not_instantiated(self):
        class Exploding(IGuard):
            name = "exploding"

            def __init__(self):
                raise AssertionError("factory must not be called for a name")

        assert detector_name(Exploding) == "exploding"

    def test_opaque_callable_falls_back(self):
        assert detector_name(lambda: IGuard()) == IGuard.name

    def test_none_is_native(self):
        assert detector_name(None) == "native"


class TestParallelEqualsSerial:
    """Satellite acceptance: workers=4 merges identically to workers=1."""

    def test_run_workload_equivalence(self):
        workload = get_workload("b_scan")
        serial = run_workload(workload, IGuard, seeds=(1, 2, 3, 4))
        parallel = run_workload(workload, IGuard, seeds=(1, 2, 3, 4), workers=4)
        assert parallel == serial

    def test_run_workload_racy_equivalence(self):
        workload = get_workload("graph-color")
        serial = run_workload(workload, IGuard)
        parallel = run_workload(workload, IGuard, workers=4)
        assert parallel == serial
        assert parallel.races > 0

    def test_run_suite_equivalence(self):
        requests = [
            (get_workload("b_scan"), IGuard, None),
            (get_workload("1dconv"), IGuard, None),
            (get_workload("b_reduce"), None, (1,)),
        ]
        serial = run_suite(requests, workers=1)
        parallel = run_suite(requests, workers=4)
        assert parallel == serial
        assert [r.workload for r in parallel] == ["b_scan", "1dconv", "b_reduce"]

    def test_run_suite_complex_binary_precheck(self):
        from repro.baselines import Barracuda

        workload = get_workload("louvain")
        assert workload.complex_binary
        serial = run_suite([(workload, Barracuda, None)], workers=1)
        parallel = run_suite([(workload, Barracuda, None)], workers=4)
        assert serial == parallel
        assert parallel[0].status == "unsupported"

    def test_seed_task_roundtrip(self):
        # The worker-side trampoline reproduces the in-process outcome.
        workload = get_workload("1dconv")
        from repro.workloads.base import SIM_GPU
        from repro.workloads.runner import _run_one_seed

        task = _SeedTask(workload, IGuard, SIM_GPU, seed=1)
        assert _run_seed_task(task) == _run_one_seed(workload, IGuard, SIM_GPU, 1)


class TestSupervision:
    """The executor survives stalled, crashed, hung and flaky workers."""

    def test_soft_timeout_logs_stall_warning(self, parallel_log):
        # One cell sleeps well past the soft timeout: the supervisor
        # names it in a warning but lets it finish.
        result = parallel_map(
            _sleepy, [0.6, 0.0, 0.0], workers=2, soft_timeout=0.15
        )
        assert result == [0.6, 0.0, 0.0]
        stalls = [m for m in parallel_log if "no result" in m]
        assert stalls and "0.6" in stalls[0]

    def test_worker_crash_detected_and_cell_resubmitted(
        self, monkeypatch, parallel_log
    ):
        # Every cell's first attempt dies via os._exit (injected chaos);
        # the supervisor replaces the worker and the retry succeeds.
        monkeypatch.setenv(chaos.ENV_VAR, "crash=1.0,seed=3,times=1")
        result = parallel_map(
            abs, [-1, -2, -3], workers=2, backoff_base=0.01
        )
        assert result == [1, 2, 3]
        assert any("died" in m for m in parallel_log)
        assert sum("retry" in m for m in parallel_log) >= 3

    def test_hung_cell_killed_by_hard_timeout_and_retried(
        self, monkeypatch, parallel_log
    ):
        monkeypatch.setenv(
            chaos.ENV_VAR, "hang=1.0,seed=5,times=1,hang_s=60"
        )
        start = time.perf_counter()
        result = parallel_map(
            abs, [-4, -5], workers=2, hard_timeout=0.3, backoff_base=0.01
        )
        assert result == [4, 5]
        assert time.perf_counter() - start < 30.0  # nowhere near hang_s
        assert any("hard timeout" in m for m in parallel_log)

    def test_flaky_cell_retried_in_process(self, monkeypatch, parallel_log):
        monkeypatch.setenv(chaos.ENV_VAR, "flake=1.0,seed=7,times=1")
        result = parallel_map(abs, [-6, -7], workers=2, backoff_base=0.01)
        assert result == [6, 7]
        assert any("ChaosFault" in m for m in parallel_log)

    def test_permanent_failure_exhausts_retries(self):
        with pytest.raises(RetryExhaustedError) as info:
            parallel_map(
                _always_fail, [1, 2], workers=2,
                max_retries=1, backoff_base=0.01,
            )
        assert "failed after" in str(info.value)
        assert "boom" in str(info.value)

    def test_hard_timeout_env_default(self, monkeypatch):
        from repro.engine.parallel import (
            CELL_TIMEOUT_ENV,
            default_cell_timeout,
        )

        monkeypatch.delenv(CELL_TIMEOUT_ENV, raising=False)
        assert default_cell_timeout() is None
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "12.5")
        assert default_cell_timeout() == 12.5
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "not-a-number")
        assert default_cell_timeout() is None

    def test_chaos_run_matches_clean_run(self, monkeypatch):
        # The acceptance property: a seeded chaos run converges to the
        # same merged results as a fault-free run.
        from repro.workloads.base import SIM_GPU

        workload = get_workload("b_scan")
        tasks = [_SeedTask(workload, IGuard, SIM_GPU, seed) for seed in (1, 2)]
        clean = [_run_seed_task(t) for t in tasks]
        monkeypatch.setenv(chaos.ENV_VAR, "crash=0.5,flake=0.5,seed=13,times=1")
        chaotic = parallel_map(
            _run_seed_task, tasks, workers=2, backoff_base=0.01
        )
        assert chaotic == clean
