"""Unit and property tests for the packed bit-field machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitfield import BitField, BitStruct
from repro.errors import ConfigError


class TestBitField:
    def test_width(self):
        assert BitField("x", 7, 4).width == 4

    def test_single_bit(self):
        f = BitField("flag", 10, 10)
        assert f.width == 1
        assert f.mask == 1 << 10

    def test_mask_position(self):
        f = BitField("x", 5, 2)
        assert f.mask == 0b111100

    def test_max_value(self):
        assert BitField("x", 9, 4).max_value == 63

    def test_extract(self):
        f = BitField("x", 11, 8)
        assert f.extract(0xA00) == 0xA

    def test_insert(self):
        f = BitField("x", 11, 8)
        assert f.insert(0, 0xA) == 0xA00

    def test_insert_preserves_other_bits(self):
        f = BitField("x", 11, 8)
        word = 0xF0F0
        assert f.insert(word, 0) == 0xF0F0 & ~f.mask

    def test_insert_truncates(self):
        f = BitField("x", 3, 0)
        assert f.extract(f.insert(0, 0x1F)) == 0xF

    def test_truncation_wraps_like_counter(self):
        # Narrow counters wrap exactly at the field width (section 6.7).
        f = BitField("ctr", 5, 0)  # 6-bit
        assert f.extract(f.insert(0, 64)) == 0
        assert f.extract(f.insert(0, 65)) == 1

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigError):
            BitField("bad", 2, 5)

    def test_out_of_word_rejected(self):
        with pytest.raises(ConfigError):
            BitField("bad", 64, 60)


class TestBitStruct:
    def _struct(self):
        return BitStruct(
            "s",
            [BitField("hi", 63, 56), BitField("mid", 31, 16), BitField("lo", 3, 0)],
        )

    def test_pack_unpack_roundtrip(self):
        s = self._struct()
        word = s.pack(hi=0xAB, mid=0x1234, lo=0x5)
        assert s.unpack(word) == {"hi": 0xAB, "mid": 0x1234, "lo": 0x5}

    def test_get(self):
        s = self._struct()
        assert s.get(s.pack(mid=77), "mid") == 77

    def test_set_only_touches_named_field(self):
        s = self._struct()
        word = s.pack(hi=1, mid=2, lo=3)
        word = s.set(word, "mid", 9)
        assert s.unpack(word) == {"hi": 1, "mid": 9, "lo": 3}

    def test_contains(self):
        s = self._struct()
        assert "hi" in s
        assert "nope" not in s

    def test_overlap_rejected(self):
        with pytest.raises(ConfigError):
            BitStruct("bad", [BitField("a", 7, 0), BitField("b", 4, 4)])

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError):
            BitStruct("bad", [BitField("a", 7, 0), BitField("a", 15, 8)])

    @given(
        hi=st.integers(0, 0xFF),
        mid=st.integers(0, 0xFFFF),
        lo=st.integers(0, 0xF),
    )
    def test_roundtrip_property(self, hi, mid, lo):
        s = self._struct()
        word = s.pack(hi=hi, mid=mid, lo=lo)
        assert s.get(word, "hi") == hi
        assert s.get(word, "mid") == mid
        assert s.get(word, "lo") == lo
        assert word < (1 << 64)

    @given(value=st.integers(0, (1 << 64) - 1), new=st.integers(0, 0xFFFF))
    def test_set_is_idempotent(self, value, new):
        s = self._struct()
        once = s.set(value, "mid", new)
        assert s.set(once, "mid", new) == once


_WORD = st.integers(0, (1 << 64) - 1)
#: Arbitrary ints, deliberately wider than any field: the compiled path
#: must truncate exactly like the reference path's wrap-around counters.
_VALUE = st.integers(-(1 << 70), 1 << 70)


class TestCompiledCodecs:
    """The compiled whole-word codecs equal the field-by-field path."""

    def _struct(self):
        return BitStruct(
            "s",
            [BitField("hi", 63, 56), BitField("mid", 31, 16), BitField("lo", 3, 0)],
        )

    @given(hi=_VALUE, mid=_VALUE, lo=_VALUE)
    def test_encode_matches_pack(self, hi, mid, lo):
        s = self._struct()
        assert s.encode(hi, mid, lo) == s.pack(hi=hi, mid=mid, lo=lo)

    @given(word=_WORD)
    def test_decode_all_matches_unpack(self, word):
        s = self._struct()
        assert s.decode_all(word) == tuple(s.unpack(word).values())

    @given(word=_WORD)
    def test_getter_matches_get(self, word):
        s = self._struct()
        for field in s.fields:
            assert s.compile_getter(field.name)(word) == s.get(word, field.name)

    @given(word=_WORD, a=_VALUE, b=_VALUE)
    def test_setter_matches_chained_set(self, word, a, b):
        s = self._struct()
        setter = s.compile_setter("hi", "lo")
        chained = s.set(s.set(word, "hi", a), "lo", b)
        assert setter(word, a, b) == chained

    @given(word=_WORD)
    def test_decoder_subset_matches_get(self, word):
        s = self._struct()
        decode = s.compile_decoder("mid", "hi")
        assert decode(word) == (s.get(word, "mid"), s.get(word, "hi"))

    @given(word=_WORD)
    def test_metadata_words_decode_identically(self, word):
        # The real Figure 4 layouts, not just a toy struct.
        from repro.core.metadata import ACCESSOR_WORD, WRITER_WORD

        for struct in (ACCESSOR_WORD, WRITER_WORD):
            assert struct.decode_all(word) == tuple(struct.unpack(word).values())

    @given(data=st.data())
    def test_metadata_words_encode_identically(self, data):
        from repro.core.metadata import ACCESSOR_WORD, WRITER_WORD

        for struct in (ACCESSOR_WORD, WRITER_WORD):
            values = {
                f.name: data.draw(_VALUE, label=f.name) for f in struct.fields
            }
            packed = struct.pack(**values)
            assert struct.encode(*values.values()) == packed
