"""Tests for the observability subsystem: metrics, spans, logs, forensics.

The load-bearing invariant is the last test class: enabling the flight
recorder must not change one bit of detection output — same races, same
sites, same event counts — because every instrumentation site reads state
without touching the scheduler's RNG stream or the detector's metadata.
"""

from __future__ import annotations

import json
import logging

import pytest

from benchmarks.validate_schema import validate
from repro.core import IGuard
from repro.errors import DeadlockError, TimeoutError_
from repro.gpu.device import Device
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.workloads import get_workload
from repro.workloads.base import SIM_GPU


@pytest.fixture
def obs_off():
    """Guarantee the global recorder is off and clean around a test."""
    obs_metrics.set_enabled(False)
    obs_metrics.get_registry().reset()
    obs_spans.set_tracing(False)
    obs_spans.TRACER.drain()
    yield
    obs_metrics.set_enabled(False)
    obs_metrics.get_registry().reset()
    obs_spans.set_tracing(False)
    obs_spans.TRACER.drain()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == {"type": "counter", "value": 3.5}

    def test_counter_merge(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        b.inc(3)
        a.merge(b.snapshot())
        assert a.snapshot()["value"] == 5

    def test_gauge_last_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.snapshot()["value"] == 7.0

    def test_histogram_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(7.0)
        assert snap["min"] == 1.0 and snap["max"] == 4.0

    def test_histogram_merge(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(1.0)
        b.observe(8.0)
        b.observe(0.25)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0.25 and snap["max"] == 8.0
        assert sum(snap["buckets"].values()) == 3


class TestRegistry:
    def test_same_name_same_instrument(self):
        r = MetricsRegistry(enabled=True)
        assert r.counter("x") is r.counter("x")

    def test_type_conflict_raises(self):
        r = MetricsRegistry(enabled=True)
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_merge_snapshot_adds_counters(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.histogram("h").observe(1.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter("n").snapshot()["value"] == 5
        assert a.histogram("h").snapshot()["count"] == 1

    def test_snapshot_document_matches_schema(self, obs_off):
        obs_metrics.set_enabled(True)
        registry = obs_metrics.get_registry()
        registry.counter("a.b").inc()
        registry.histogram("h").observe(0.5)
        document = registry.snapshot_document()
        with open("benchmarks/schemas/metrics.schema.json") as handle:
            schema = json.load(handle)
        assert validate(document, schema) == []

    def test_hot_preregistered_and_cheap_when_disabled(self, obs_off):
        hot = obs_metrics.HOT
        assert not hot.enabled
        # Disabled instrumentation sites never fire; the counters exist
        # but stay untouched.
        assert hot.detector_checked.snapshot()["value"] == 0


# ---------------------------------------------------------------------------
# Span tracer
# ---------------------------------------------------------------------------


class TestSpans:
    def test_document_matches_schema(self):
        tracer = SpanTracer(enabled=True)
        tracer.name_process(1, "proc")
        tracer.name_thread(1, 2, "thr")
        tracer.add_complete("work", 10.0, 5.0, cat="test", tid=2, pid=1)
        tracer.add_instant("mark", 12.0)
        document = tracer.to_document()
        with open("benchmarks/schemas/trace.schema.json") as handle:
            schema = json.load(handle)
        assert validate(document, schema) == []
        assert json.loads(json.dumps(document)) == document

    def test_drain_and_absorb(self):
        worker = SpanTracer(enabled=True)
        worker.add_complete("cell", 0.0, 1.0)
        events = worker.drain()
        assert worker.drain() == []
        parent = SpanTracer(enabled=True)
        parent.absorb(events)
        assert [e["name"] for e in parent.to_document()["traceEvents"]] == [
            "cell"
        ]

    def test_tid_for_is_stable(self):
        tracer = SpanTracer(enabled=True)
        assert tracer.tid_for("a") == tracer.tid_for("a")
        assert tracer.tid_for("a") != tracer.tid_for("b")

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        tracer.add_complete("work", 0.0, 1.0)
        assert tracer.to_document()["traceEvents"] == []


# ---------------------------------------------------------------------------
# Logging facade
# ---------------------------------------------------------------------------


class TestLog:
    def test_output_goes_to_stdout(self, capsys):
        obs_log.output("result", "line")
        captured = capsys.readouterr()
        assert captured.out == "result line\n"
        assert captured.err == ""

    def test_logger_namespaced_under_iguard(self):
        logger = obs_log.get_logger("somewhere")
        assert logger.name == "iguard.somewhere"
        # The facade configures the "iguard" root, never the global root.
        assert not logging.getLogger().handlers or all(
            h.get_name() != "iguard" for h in logging.getLogger().handlers
        )

    def test_level_filtering(self, capsys):
        obs_log.configure(level="warning")
        logger = obs_log.get_logger("levels")
        logger.info("hidden")
        logger.warning("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "shown" in err
        obs_log.configure(level="info")


# ---------------------------------------------------------------------------
# Race forensics
# ---------------------------------------------------------------------------


class TestForensics:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.obs.forensics import explain_workload

        return explain_workload("reduction", seeds=(1,))

    def test_finds_races_from_replay(self, reports):
        assert reports, "reduction seed 1 must produce racy forensics"

    def test_report_names_racing_instruction_pair(self, reports):
        from repro.obs.forensics import render_report

        text = render_report(reports[0])
        assert "racing instruction pair" in text
        assert reports[0].current_ip in text
        assert reports[0].previous_ip in text

    def test_report_shows_metadata_words_and_condition(self, reports):
        from repro.obs.forensics import render_report

        first = reports[0]
        text = render_report(first)
        assert f"0x{first.accessor_word_before:016x}" in text
        assert f"0x{first.writer_word_before:016x}" in text
        assert first.condition in ("R1", "R2", "R3", "R4", "R5")
        assert f"fired condition: {first.condition}" in text

    def test_site_filter(self):
        from repro.obs.forensics import explain_workload

        filtered = explain_workload(
            "reduction", site="_reduction_kernel:346", seeds=(1,)
        )
        assert filtered
        assert all(
            "_reduction_kernel:346" in f.record.ip for f in filtered
        )


# ---------------------------------------------------------------------------
# The invariant: observability changes no detection output.
# ---------------------------------------------------------------------------


def _run_fingerprint(workload_name: str, seed: int) -> dict:
    workload = get_workload(workload_name)
    device = Device(SIM_GPU)
    tool = device.add_tool(IGuard())
    try:
        workload.run(device, seed)
    except (DeadlockError, TimeoutError_):
        pass
    return {
        "sites": tool.races.sites(),
        "num_records": len(tool.races.records()),
        "checked": sum(s.accesses_checked for s in tool.stats),
        "coalesced": sum(s.accesses_coalesced for s in tool.stats),
        "batches": [r.batches for r in device.runs],
        "instructions": [r.instructions for r in device.runs],
    }


class TestObsInvariance:
    @pytest.mark.parametrize("name,seed", [("reduction", 1), ("matrix-mult", 2)])
    def test_enabling_obs_is_bit_identical(self, obs_off, name, seed):
        baseline = _run_fingerprint(name, seed)
        obs_metrics.set_enabled(True)
        obs_spans.set_tracing(True)
        instrumented = _run_fingerprint(name, seed)
        assert instrumented == baseline
        # ... and the recorder actually recorded something.
        hot = obs_metrics.HOT
        assert hot.detector_checked.snapshot()["value"] > 0
        assert obs_spans.TRACER.to_document()["traceEvents"]
