"""Tests for the diagnosis module, the tracer tool, and JSON artifacts."""

import json

import pytest

from repro.core import IGuard, RaceType
from repro.core.diagnose import Diagnosis, diagnose, diagnose_all, report
from repro.core.report import RaceRecord
from repro.experiments.artifacts import export, _plain
from repro.gpu.instructions import atomic_add, atomic_load, load, store, syncthreads
from repro.instrument.tracer import Tracer

from tests.conftest import fresh_device


def _record(race_type=RaceType.INTER_BLOCK, ip="kern:7"):
    return RaceRecord(
        race_type=race_type, kernel="kern", ip=ip, access="load",
        address=0x1000, location="data[0]", warp_id=1, lane=2, block_id=0,
        prev_warp_id=3, prev_lane=0,
    )


class TestDiagnose:
    @pytest.mark.parametrize(
        "race_type,condition,fix_word",
        [
            (RaceType.ATOMIC_SCOPE, "R1", "scope"),
            (RaceType.ITS, "R2", "__syncwarp"),
            (RaceType.INTRA_BLOCK, "R3", "__syncthreads"),
            (RaceType.INTER_BLOCK, "R4", "__threadfence"),
            (RaceType.IMPROPER_LOCKING, "R5", "lock"),
        ],
    )
    def test_every_type_has_condition_and_fix(self, race_type, condition, fix_word):
        d = diagnose(_record(race_type))
        assert d.condition == condition
        assert fix_word in d.suggested_fix

    def test_render_mentions_essentials(self):
        text = diagnose(_record()).render()
        for fragment in ("kern:7", "data[0]", "R4", "fix"):
            assert fragment in text

    def test_diagnose_all_dedups_sites(self):
        records = [_record(ip="a"), _record(ip="a"), _record(ip="b")]
        assert len(diagnose_all(records)) == 2

    def test_report_from_detector(self):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        dev = fresh_device()
        det = dev.add_tool(IGuard())
        data, flag, out = (dev.alloc(n, 1) for n in ("data", "flag", "out"))
        dev.launch(kern, 2, 8, args=(data, flag, out), seed=1)
        text = report(det)
        assert "1 racy site(s)" in text
        assert "R4" in text

    def test_report_clean_detector(self):
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        assert report(det) == "No races detected."


class TestTracer:
    def _traced_run(self, **tracer_kwargs):
        dev = fresh_device()
        tracer = dev.add_tool(Tracer(**tracer_kwargs))
        data = dev.alloc("data", 8, init=0)

        def kern(ctx, data):
            yield store(data, ctx.tid, ctx.tid)
            yield syncthreads()
            v = yield load(data, (ctx.tid + 1) % ctx.block_dim)
            yield store(data, ctx.tid, v)

        dev.launch(kern, 1, 8, args=(data,), seed=1)
        return tracer

    def test_records_memory_and_sync(self):
        tracer = self._traced_run()
        kinds = {l.kind for l in tracer.lines}
        assert {"store", "load", "syncthreads"} <= kinds
        assert len(tracer) == 8 + 1 + 8 + 8  # stores + barrier + loads + stores

    def test_memory_only(self):
        tracer = self._traced_run(memory_only=True)
        assert all(l.kind in ("load", "store", "atomic") for l in tracer.lines)

    def test_watchpoint_filter(self):
        dev = fresh_device()
        data = dev.alloc("data", 8, init=0)
        tracer = dev.add_tool(Tracer(address_filter=data.addr_of(3)))

        def kern(ctx, data):
            yield store(data, ctx.tid, 1)

        dev.launch(kern, 1, 8, args=(data,), seed=1)
        assert len(tracer) == 1
        assert "data[3]" in tracer.lines[0].detail

    def test_limit_drops_oldest(self):
        tracer = self._traced_run(limit=5)
        assert len(tracer) == 5
        assert tracer.dropped == 20

    def test_render(self):
        tracer = self._traced_run()
        text = tracer.render(last=3)
        assert "detail" in text.splitlines()[0]
        assert len(text.splitlines()) == 4

    def test_events_for_location(self):
        tracer = self._traced_run()
        hits = tracer.events_for("data[0]")
        assert hits and all("data[0]" in l.detail for l in hits)

    def test_load_values_visible(self):
        tracer = self._traced_run()
        loads = [l for l in tracer.lines if l.kind == "load"]
        assert any("->" in l.detail for l in loads)


class TestArtifacts:
    def test_plain_handles_dataclasses_and_enums(self):
        data = _plain(_record())
        assert data["race_type"] == "DR"
        assert data["location"] == "data[0]"

    def test_export_motivation_is_json(self):
        data = export("motivation")
        json.dumps(data)  # must not raise
        assert data["block_time"] > 0

    def test_export_figure12_is_json(self):
        data = export("figure12")
        json.dumps(data)
        assert len(data) == 8
        assert all("baseline" in row for row in data)

    def test_dump_to_file(self, tmp_path):
        from repro.experiments.artifacts import dump
        path = tmp_path / "artifacts.json"
        data = dump(str(path), names=["motivation"])
        assert json.loads(path.read_text()) == data
