"""Tests for the simulated global memory."""

import pytest

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.gpu.instructions import AtomicOp, Scope
from repro.gpu.memory import WORD_BYTES, GlobalMemory

MiB = 1024 * 1024


def make_memory(weak=False, capacity=4 * MiB):
    return GlobalMemory(capacity, weak_visibility=weak)


class TestAllocation:
    def test_alloc_returns_array(self):
        mem = make_memory()
        arr = mem.alloc("a", 16)
        assert len(arr) == 16
        assert arr.name == "a"

    def test_alloc_initializes(self):
        mem = make_memory()
        arr = mem.alloc("a", 4, init=7)
        assert arr.to_list() == [7, 7, 7, 7]

    def test_alloc_no_init(self):
        mem = make_memory()
        arr = mem.alloc("a", 4, init=None)
        assert arr.read(0) == 0  # untouched words read as zero

    def test_alloc_tracks_bytes(self):
        mem = make_memory()
        mem.alloc("a", 16)
        assert mem.bytes_allocated == 16 * WORD_BYTES

    def test_oom(self):
        mem = make_memory(capacity=1024)
        with pytest.raises(OutOfMemoryError):
            mem.alloc("big", 1024)

    def test_allocations_disjoint(self):
        mem = make_memory()
        a = mem.alloc("a", 8)
        b = mem.alloc("b", 8)
        ranges = [(a.base, a.base + 8 * WORD_BYTES), (b.base, b.base + 8 * WORD_BYTES)]
        assert ranges[0][1] <= ranges[1][0] or ranges[1][1] <= ranges[0][0]

    def test_alloc_hook_invoked(self):
        mem = make_memory()
        seen = []
        mem.alloc_hooks.append(seen.append)
        mem.alloc("a", 4)
        assert len(seen) == 1 and seen[0].name == "a"

    def test_owner_of(self):
        mem = make_memory()
        a = mem.alloc("a", 4)
        assert mem.owner_of(a.addr_of(2)).name == "a"
        assert mem.owner_of(0x10) is None

    def test_describe(self):
        mem = make_memory()
        a = mem.alloc("data", 8)
        assert mem.describe(a.addr_of(3)) == "data[3]"

    def test_describe_unknown(self):
        mem = make_memory()
        assert mem.describe(0x10).startswith("0x")


class TestArrayAccess:
    def test_bounds_check(self):
        mem = make_memory()
        a = mem.alloc("a", 4)
        with pytest.raises(InvalidAddressError):
            a.addr_of(4)
        with pytest.raises(InvalidAddressError):
            a.addr_of(-1)

    def test_host_read_write(self):
        mem = make_memory()
        a = mem.alloc("a", 2)
        a.write(1, 99)
        assert a.read(1) == 99

    def test_fill(self):
        mem = make_memory()
        a = mem.alloc("a", 3)
        a.fill(5)
        assert a.to_list() == [5, 5, 5]

    def test_load_list(self):
        mem = make_memory()
        a = mem.alloc("a", 3)
        a.load_list([1, 2, 3])
        assert a.to_list() == [1, 2, 3]


class TestDeviceAccess:
    def test_store_then_load(self):
        mem = make_memory()
        a = mem.alloc("a", 2)
        mem.device_store(a.addr_of(0), 42, block_id=0)
        assert mem.device_load(a.addr_of(0), block_id=0) == 42

    def test_unaligned_rejected(self):
        mem = make_memory()
        a = mem.alloc("a", 2)
        with pytest.raises(InvalidAddressError):
            mem.device_load(a.addr_of(0) + 1, block_id=0)

    def test_wild_access_rejected(self):
        mem = make_memory()
        with pytest.raises(InvalidAddressError):
            mem.device_load(0x10, block_id=0)

    def test_atomic_add_returns_old(self):
        mem = make_memory()
        a = mem.alloc("a", 1, init=10)
        old = mem.device_atomic(AtomicOp.ADD, a.addr_of(0), 5, block_id=0)
        assert old == 10
        assert mem.host_read(a.addr_of(0)) == 15

    def test_atomic_cas_success(self):
        mem = make_memory()
        a = mem.alloc("a", 1, init=0)
        old = mem.device_atomic(AtomicOp.CAS, a.addr_of(0), 1, 0, compare=0)
        assert old == 0
        assert mem.host_read(a.addr_of(0)) == 1

    def test_atomic_cas_failure(self):
        mem = make_memory()
        a = mem.alloc("a", 1, init=7)
        old = mem.device_atomic(AtomicOp.CAS, a.addr_of(0), 1, 0, compare=0)
        assert old == 7
        assert mem.host_read(a.addr_of(0)) == 7

    def test_atomic_min_max(self):
        mem = make_memory()
        a = mem.alloc("a", 1, init=5)
        mem.device_atomic(AtomicOp.MIN, a.addr_of(0), 3, block_id=0)
        assert mem.host_read(a.addr_of(0)) == 3
        mem.device_atomic(AtomicOp.MAX, a.addr_of(0), 9, block_id=0)
        assert mem.host_read(a.addr_of(0)) == 9


class TestWeakVisibility:
    """The optional store-buffer mode for scoped-race manifestation."""

    def test_own_block_sees_buffered_store(self):
        mem = make_memory(weak=True)
        a = mem.alloc("a", 1, init=0)
        mem.device_store(a.addr_of(0), 1, block_id=0)
        assert mem.device_load(a.addr_of(0), block_id=0) == 1

    def test_other_block_sees_stale_value(self):
        mem = make_memory(weak=True)
        a = mem.alloc("a", 1, init=0)
        mem.device_store(a.addr_of(0), 1, block_id=0)
        assert mem.device_load(a.addr_of(0), block_id=1) == 0

    def test_flush_publishes(self):
        mem = make_memory(weak=True)
        a = mem.alloc("a", 1, init=0)
        mem.device_store(a.addr_of(0), 1, block_id=0)
        mem.flush_block(0)
        assert mem.device_load(a.addr_of(0), block_id=1) == 1

    def test_block_scoped_atomic_stays_buffered(self):
        mem = make_memory(weak=True)
        a = mem.alloc("a", 1, init=0)
        mem.device_atomic(
            AtomicOp.ADD, a.addr_of(0), 1, block_id=0, scope=Scope.BLOCK
        )
        assert mem.device_load(a.addr_of(0), block_id=1) == 0
        assert mem.device_load(a.addr_of(0), block_id=0) == 1

    def test_device_scoped_atomic_publishes_block(self):
        mem = make_memory(weak=True)
        a = mem.alloc("a", 2, init=0)
        mem.device_store(a.addr_of(1), 5, block_id=0)
        mem.device_atomic(AtomicOp.ADD, a.addr_of(0), 1, block_id=0, scope=Scope.DEVICE)
        # The device atomic flushed block 0's pending stores.
        assert mem.device_load(a.addr_of(1), block_id=1) == 5

    def test_flush_all(self):
        mem = make_memory(weak=True)
        a = mem.alloc("a", 2, init=0)
        mem.device_store(a.addr_of(0), 1, block_id=0)
        mem.device_store(a.addr_of(1), 2, block_id=1)
        mem.flush_all()
        assert a.to_list() == [1, 2]
