"""Tests for the shared kernel patterns (locks, flags)."""

from repro.core import IGuard
from repro.gpu.instructions import load, store
from repro.workloads.patterns import (
    lock_acquire,
    lock_release,
    signal,
    signal_fenced,
    wait_for,
    wait_for_acquire,
)

from tests.conftest import fresh_device


class TestLockPatterns:
    def test_mutual_exclusion(self):
        # 8 threads incrementing under one lock: no lost updates.
        dev = fresh_device()
        locks = dev.alloc("locks", 1, init=0)
        counter = dev.alloc("counter", 1, init=0)

        def kern(ctx, locks, counter):
            yield from lock_acquire(locks, 0)
            v = yield load(counter, 0)
            yield store(counter, 0, v + 1)
            yield from lock_release(locks, 0)

        dev.launch(kern, 2, 4, args=(locks, counter), seed=9)
        assert counter.read(0) == 8

    def test_lock_state_restored(self):
        dev = fresh_device()
        locks = dev.alloc("locks", 1, init=0)
        data = dev.alloc("data", 1, init=0)

        def kern(ctx, locks, data):
            yield from lock_acquire(locks, 0)
            yield store(data, 0, ctx.tid)
            yield from lock_release(locks, 0)

        dev.launch(kern, 1, 4, args=(locks, data))
        assert locks.read(0) == 0  # released at the end

    def test_locked_updates_race_free_under_iguard(self):
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        locks = dev.alloc("locks", 1, init=0)
        counter = dev.alloc("counter", 1, init=0)

        def kern(ctx, locks, counter):
            yield from lock_acquire(locks, 0)
            v = yield load(counter, 0)
            yield store(counter, 0, v + 1)
            yield from lock_release(locks, 0)

        dev.launch(kern, 2, 4, args=(locks, counter), seed=4)
        assert det.race_count == 0


class TestFlagPatterns:
    def test_signal_wait_orders_execution(self):
        dev = fresh_device()
        flags = dev.alloc("flags", 1, init=0)
        out = dev.alloc("out", 1, init=0)

        def kern(ctx, flags, out):
            if ctx.tid == 0:
                yield store(out, 0, 42)
                yield from signal(flags, 0)
            elif ctx.tid == 1:
                yield from wait_for(flags, 0)
                v = yield load(out, 0)
                yield store(out, 0, v + 1)

        dev.launch(kern, 1, 4, args=(flags, out), seed=6)
        assert out.read(0) == 43  # consumer observed the produced value

    def test_unfenced_signal_is_detector_visible_race(self):
        # signal/wait order execution but create no happens-before: the
        # whole point of the helper for seeding deterministic races.
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        flags = dev.alloc("flags", 1, init=0)
        data = dev.alloc("data", 1, init=0)
        out = dev.alloc("out", 1, init=0)

        def kern(ctx, flags, data, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 7)
                yield from signal(flags, 0)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                yield from wait_for(flags, 0)
                v = yield load(data, 0)
                yield store(out, 0, v)

        dev.launch(kern, 2, 4, args=(flags, data, out), seed=2)
        assert det.race_count == 1

    def test_fenced_signal_is_race_free(self):
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        flags = dev.alloc("flags", 1, init=0)
        data = dev.alloc("data", 1, init=0)
        out = dev.alloc("out", 1, init=0)

        def kern(ctx, flags, data, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 7)
                yield from signal_fenced(flags, 0)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                yield from wait_for_acquire(flags, 0)
                v = yield load(data, 0)
                yield store(out, 0, v)

        dev.launch(kern, 2, 4, args=(flags, data, out), seed=2)
        assert det.race_count == 0
        assert out.read(0) == 7

    def test_wait_for_target(self):
        dev = fresh_device()
        flags = dev.alloc("flags", 1, init=0)
        out = dev.alloc("out", 1, init=0)

        def kern(ctx, flags, out):
            if ctx.tid < 3:
                yield from signal(flags, 0)
            elif ctx.tid == 3:
                yield from wait_for(flags, 0, target=3)
                yield store(out, 0, 1)

        dev.launch(kern, 1, 4, args=(flags, out), seed=8)
        assert out.read(0) == 1
        assert flags.read(0) == 3
