"""End-to-end tests of the iGUARD detector on small kernels.

These exercise the whole pipeline — instrumentation events, metadata
updates, lock inference, the two-tier checks, reporting — on the paper's
canonical bug patterns and their fixed variants.
"""

import pytest

from repro.core import IGuard, RaceType
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_cas,
    atomic_exch,
    atomic_load,
    fence_block,
    fence_device,
    load,
    store,
    syncthreads,
    syncwarp,
)

from tests.conftest import detect, fresh_device


def types_of(det):
    return {t for _, t in det.races.sites()}


class TestRaceFreePatterns:
    def test_private_slots(self):
        def kern(ctx, data):
            yield store(data, ctx.tid, 1)
            v = yield load(data, ctx.tid)
            yield store(data, ctx.tid, v + 1)

        det, _ = detect(kern, 2, 8, {"data": 16})
        assert det.race_count == 0

    def test_read_only_sharing(self):
        def kern(ctx, data, out):
            v = yield load(data, 0)
            yield store(out, ctx.tid, v)

        det, _ = detect(kern, 2, 8, {"data": (1, 7), "out": 16})
        assert det.race_count == 0

    def test_barrier_protected_handoff(self):
        def kern(ctx, data, out):
            yield store(data, ctx.tid, ctx.tid)
            yield syncthreads()
            v = yield load(data, ctx.block_id * ctx.block_dim
                           + (ctx.tid_in_block + 1) % ctx.block_dim)
            yield store(out, ctx.tid, v)

        det, _ = detect(kern, 2, 8, {"data": 16, "out": 16})
        assert det.race_count == 0

    def test_syncwarp_protected_handoff(self):
        def kern(ctx, data, out):
            yield store(data, ctx.tid, ctx.lane)
            yield syncwarp()
            base = ctx.warp_id * ctx.warp_size
            v = yield load(data, base + (ctx.lane + 1) % ctx.warp_size)
            yield store(out, ctx.tid, v)

        det, _ = detect(kern, 2, 8, {"data": 16, "out": 16})
        assert det.race_count == 0

    def test_fence_atomic_publication(self):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 42)
                yield fence_device()
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, arrays = detect(kern, 2, 8, {"data": 1, "flag": 1, "out": 1})
        assert det.race_count == 0
        assert arrays["out"].read(0) == 42

    def test_device_atomics_any_block(self):
        def kern(ctx, counter):
            yield atomic_add(counter, 0, 1)

        det, arrays = detect(kern, 4, 8, {"counter": 1})
        assert det.race_count == 0
        assert arrays["counter"].read(0) == 32

    def test_block_atomics_single_block(self):
        def kern(ctx, counter):
            yield atomic_add(counter, 0, 1, scope=Scope.BLOCK)

        det, _ = detect(kern, 1, 8, {"counter": 1})
        assert det.race_count == 0

    def test_proper_locking(self):
        def kern(ctx, locks, data):
            while (yield atomic_cas(locks, 0, 0, 1)) != 0:
                pass
            yield fence_device()
            v = yield load(data, 0)
            yield store(data, 0, v + 1)
            yield fence_device()
            yield atomic_exch(locks, 0, 0)

        det, arrays = detect(kern, 2, 4, {"locks": 1, "data": 1})
        assert det.race_count == 0
        assert arrays["data"].read(0) == 8  # lost-update free


class TestRacyPatterns:
    def test_missing_barrier_intra_block(self):
        def kern(ctx, data, flag, out):
            if ctx.warp_in_block == 0 and ctx.lane == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_in_block == 1 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 1, 8, {"data": 1, "flag": 1, "out": 1})
        assert det.race_count == 1
        assert types_of(det) == {RaceType.INTRA_BLOCK}

    def test_missing_fence_inter_block(self):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)  # no fence before publication
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 2, 8, {"data": 1, "flag": 1, "out": 1})
        assert det.race_count == 1
        assert types_of(det) == {RaceType.INTER_BLOCK}

    def test_missing_syncwarp_its(self):
        def kern(ctx, data, flag, out):
            if ctx.warp_id == 0 and ctx.lane == 1:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_id == 0 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 1, 4, {"data": 1, "flag": 1, "out": 1})
        assert det.race_count == 1
        assert types_of(det) == {RaceType.ITS}

    def test_block_scope_fence_insufficient_across_blocks(self):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield fence_block()  # wrong scope
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 2, 8, {"data": 1, "flag": 1, "out": 1})
        assert det.race_count == 1
        assert types_of(det) == {RaceType.INTER_BLOCK}

    def test_scoped_atomic_race(self):
        def kern(ctx, counter, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield atomic_add(counter, 0, 1, scope=Scope.BLOCK)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(counter, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 2, 8, {"counter": 1, "flag": 1, "out": 1})
        assert det.race_count == 1
        assert types_of(det) == {RaceType.ATOMIC_SCOPE}

    def test_per_thread_lock_race_detected_somewhere(self):
        # Figure 9: distinct per-thread locks "protecting" one word.
        def kern(ctx, locks, data):
            while (yield atomic_cas(locks, ctx.lane, 0, 1)) != 0:
                pass
            yield fence_device()
            v = yield load(data, ctx.warp_id)
            yield store(data, ctx.warp_id, v + 1)
            yield fence_device()
            yield atomic_exch(locks, ctx.lane, 0)

        hits = 0
        for seed in range(10):
            det, _ = detect(kern, 2, 8, {"locks": 4, "data": 4}, seed=seed)
            if det.race_count:
                hits += 1
        assert hits >= 5  # schedule-dependent, but found in most schedules

    def test_race_report_contents(self):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 2, 8, {"data": 1, "flag": 1, "out": 1})
        (record,) = det.races.records()[:1]
        assert record.location == "data[0]"
        assert record.access == "load"
        assert "kern" in record.ip
        assert record.race_type is RaceType.INTER_BLOCK
        assert "DR" in record.describe()


class TestDetectorMechanics:
    def test_dedup_one_site_many_occurrences(self):
        def kern(ctx, data, out):
            # Every thread of warp 1 reads what warp 0 wrote, no barrier:
            # many dynamic races, one source site.
            if ctx.warp_in_block == 0 and ctx.lane == 0:
                yield store(data, 0, 1)
                yield atomic_add(out, 1, 1)
            if ctx.warp_in_block == 1:
                while (yield atomic_load(out, 1)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 2 + ctx.lane, v)

        det, _ = detect(kern, 1, 8, {"data": 1, "out": 8})
        assert det.race_count == 1
        assert len(det.races.records()) >= 1

    def test_metadata_reset_between_kernels(self):
        # The implicit barrier at kernel completion orders everything:
        # writing in kernel 1 and reading in kernel 2 is race-free.
        dev = fresh_device()
        det = dev.add_tool(IGuard())
        data = dev.alloc("data", 8, init=0)
        out = dev.alloc("out", 8, init=0)

        def writer(ctx, data, out):
            yield store(data, ctx.tid, ctx.tid)

        def reader(ctx, data, out):
            v = yield load(data, (ctx.tid + 3) % 8)
            yield store(out, ctx.tid, v)

        dev.launch(writer, 1, 8, args=(data, out))
        dev.launch(reader, 1, 8, args=(data, out))
        assert det.race_count == 0
        assert out.to_list() == [(i + 3) % 8 for i in range(8)]

    def test_stats_recorded_per_launch(self):
        def kern(ctx, data):
            yield store(data, ctx.tid, 1)

        det, _ = detect(kern, 1, 8, {"data": 8})
        assert len(det.stats) == 1
        stat = det.stats[0]
        assert stat.accesses_checked > 0
        assert stat.kernel == "kern"

    def test_coalescing_reduces_checks(self):
        def kern(ctx, data):
            for _ in range(4):
                v = yield load(data, 0)  # whole warp loads one address
                yield store(data, 1 + ctx.tid, v)

        dev = fresh_device()
        det = dev.add_tool(IGuard())
        data = dev.alloc("data", 16, init=0)
        dev.launch(kern, 1, 4, args=(data,), seed=1, split_probability=0.0)
        assert det.stats[0].accesses_coalesced > 0

    def test_coalescing_disabled_by_config(self):
        def kern(ctx, data):
            v = yield load(data, 0)
            yield store(data, 1 + ctx.tid, v)

        config = IGuardConfig(coalescing=False)
        dev = fresh_device()
        det = dev.add_tool(IGuard(config))
        data = dev.alloc("data", 16, init=0)
        dev.launch(kern, 1, 4, args=(data,), seed=1, split_probability=0.0)
        assert det.stats[0].accesses_coalesced == 0

    def test_coalescing_does_not_hide_races(self):
        # The paper: coalescing merges same-warp loads/atomics "without
        # the possibility of missing a race".
        def kern(ctx, data, flag, out):
            if ctx.warp_in_block == 0 and ctx.lane == 0:
                yield store(data, 0, 9)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_in_block == 1:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)  # coalesced racy load
                yield store(out, ctx.lane, v)

        det, _ = detect(kern, 1, 8, {"data": 1, "flag": 1, "out": 4})
        assert det.race_count == 1

    def test_summary_format(self):
        def kern(ctx, data):
            yield store(data, ctx.tid, 1)

        det, _ = detect(kern, 1, 4, {"data": 4})
        assert "0 race site(s)" in det.summary()

    def test_timeout_flushes_races(self):
        def kern(ctx, data, flag):
            if ctx.tid == 1:
                yield store(data, 0, 1)
                yield atomic_add(flag, 1, 1)
            if ctx.tid == 0:
                while (yield atomic_load(flag, 1)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(data, 1, v)
                while (yield atomic_load(flag, 0)) == 0:
                    pass  # livelock forever

        dev = fresh_device()
        det = dev.add_tool(IGuard())
        data = dev.alloc("data", 2, init=0)
        flag = dev.alloc("flag", 2, init=0)
        run = dev.launch(kern, 1, 4, args=(data, flag), max_batches=3000)
        assert run.timed_out
        assert det.race_count == 1  # detected before the timeout, flushed

    def test_race_types_helper(self):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = detect(kern, 2, 8, {"data": 1, "flag": 1, "out": 1})
        assert det.race_types() == {RaceType.INTER_BLOCK}


class TestScoRDMode:
    def test_misses_its_races(self):
        def kern(ctx, data, flag, out):
            if ctx.warp_id == 0 and ctx.lane == 1:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_id == 0 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        config = DEFAULT_CONFIG.scord_mode()
        det, _ = detect(kern, 1, 4, {"data": 1, "flag": 1, "out": 1},
                        config=config)
        assert det.race_count == 0  # lockstep assumption hides the race

    def test_still_catches_scoped_races(self):
        def kern(ctx, counter, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield atomic_add(counter, 0, 1, scope=Scope.BLOCK)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(counter, 0)
                yield store(out, 0, v)

        config = DEFAULT_CONFIG.scord_mode()
        det, _ = detect(kern, 2, 8, {"counter": 1, "flag": 1, "out": 1},
                        config=config)
        assert det.race_count == 1
        assert types_of(det) == {RaceType.ATOMIC_SCOPE}
