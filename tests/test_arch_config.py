"""Tests for GPU configs and detector configuration."""

import pytest

from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.errors import ConfigError
from repro.gpu.arch import GiB, MiB, PRE_VOLTA, TEST_GPU, TITAN_RTX, GPUConfig


class TestGPUConfig:
    def test_titan_rtx_matches_table3(self):
        assert TITAN_RTX.num_sms == 72
        assert TITAN_RTX.memory_bytes == 24 * GiB
        assert TITAN_RTX.warp_size == 32
        assert TITAN_RTX.supports_its

    def test_pre_volta_no_its(self):
        assert not PRE_VOLTA.supports_its

    def test_max_concurrent_lanes(self):
        assert TITAN_RTX.max_concurrent_lanes == 72 * 64

    def test_scaled_memory(self):
        small = TITAN_RTX.scaled_memory(2 * GiB)
        assert small.memory_bytes == 2 * GiB
        assert small.num_sms == TITAN_RTX.num_sms

    def test_invalid_warp_size(self):
        with pytest.raises(ConfigError):
            GPUConfig(warp_size=0)
        with pytest.raises(ConfigError):
            GPUConfig(warp_size=128)

    def test_invalid_sms(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0)

    def test_tiny_memory_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(memory_bytes=1024)

    def test_block_limit_must_be_warp_multiple(self):
        with pytest.raises(ConfigError):
            GPUConfig(warp_size=32, max_threads_per_block=1000)

    def test_test_gpu_is_small(self):
        assert TEST_GPU.warp_size == 4
        assert TEST_GPU.memory_bytes == 64 * MiB


class TestIGuardConfig:
    def test_defaults_match_paper(self):
        c = DEFAULT_CONFIG
        assert c.granularity_bytes == 4
        assert c.metadata_entry_bytes == 16  # 4x overhead per granule
        assert c.race_buffer_bytes == 1024 * 1024  # the 1 MB buffer
        assert c.lock_table_entries == 3
        assert c.coalescing and c.dynamic_backoff
        assert c.its_support and c.lockset
        assert c.use_uvm and c.prefault
        assert c.accessor_history == 1

    def test_without_optimizations(self):
        c = DEFAULT_CONFIG.without_optimizations()
        assert not c.coalescing and not c.dynamic_backoff
        assert c.its_support  # detection features untouched

    def test_scord_mode(self):
        c = DEFAULT_CONFIG.scord_mode()
        assert not c.its_support and not c.lockset

    def test_invalid_granularity(self):
        with pytest.raises(ConfigError):
            IGuardConfig(granularity_bytes=5)

    def test_invalid_lock_entries(self):
        with pytest.raises(ConfigError):
            IGuardConfig(lock_table_entries=0)

    def test_buffer_must_hold_a_record(self):
        with pytest.raises(ConfigError):
            IGuardConfig(race_buffer_bytes=10, race_record_bytes=64)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.coalescing = False  # type: ignore[misc]
