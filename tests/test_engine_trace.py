"""Trace record/replay: captured streams re-drive detectors exactly."""

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import Barracuda
from repro.core import IGuard
from repro.engine import Trace, TraceSink, capture_workload, replay, replay_workload
from repro.engine.trace import decode_event, encode_event
from repro.gpu.arch import GPUConfig
from repro.gpu.device import Device
from repro.gpu.events import (
    AccessKind,
    AllocEvent,
    KernelEndEvent,
    LaunchEvent,
    MemoryEvent,
    SyncEvent,
    SyncKind,
)
from repro.gpu.ids import ThreadLocation
from repro.gpu.instructions import AtomicOp, Scope
from repro.instrument.tracer import Tracer
from repro.workloads import get_workload, run_workload
from repro.workloads.base import SIM_GPU


class TestReplayMatchesLive:
    """The acceptance check: replayed detection == live detection."""

    def test_graph_color_races_match(self):
        workload = get_workload("graph-color")
        live = run_workload(workload, IGuard)
        trace = capture_workload(workload)
        replayed = replay_workload(trace, IGuard, workload_name=workload.name)
        assert replayed.status == live.status
        assert replayed.race_sites == live.race_sites
        assert replayed.race_types == live.race_types
        assert replayed.races == live.races

    def test_graph_color_timing_matches_exactly(self):
        workload = get_workload("graph-color")
        live = run_workload(workload, IGuard)
        trace = capture_workload(workload)
        replayed = replay_workload(trace, IGuard, workload_name=workload.name)
        # Not approx: the replayed native account replays the recorded
        # cycles and the detector recharges the same overheads, so the
        # whole Figure 13 breakdown reproduces bit-for-bit.
        assert replayed.overhead == live.overhead
        assert replayed.breakdown == live.breakdown
        assert replayed.native_time == live.native_time
        assert replayed.total_time == live.total_time

    def test_replay_after_jsonl_round_trip(self):
        workload = get_workload("graph-color")
        live = run_workload(workload, IGuard)
        trace = Trace.from_jsonl(capture_workload(workload).to_jsonl())
        replayed = replay_workload(trace, IGuard, workload_name=workload.name)
        assert replayed.race_sites == live.race_sites
        assert replayed.overhead == live.overhead

    def test_replay_drives_barracuda_failures(self):
        # warpAA uses scoped atomics: Barracuda must report "unsupported"
        # from a trace exactly as it does live.
        workload = get_workload("warpAA")
        live = run_workload(workload, Barracuda, seeds=(1,))
        trace = capture_workload(workload, seeds=(1,))
        replayed = replay_workload(trace, Barracuda, workload_name=workload.name)
        assert live.status == replayed.status
        assert replayed.detail == live.detail

    def test_one_trace_many_detectors(self):
        workload = get_workload("hashtable")
        trace = capture_workload(workload, seeds=(1,))
        ig = replay_workload(trace, IGuard, workload_name=workload.name)
        bar = replay_workload(trace, Barracuda, workload_name=workload.name)
        live_ig = run_workload(workload, IGuard, seeds=(1,))
        live_bar = run_workload(workload, Barracuda, seeds=(1,))
        assert ig.race_sites == live_ig.race_sites
        assert bar.race_sites == live_bar.race_sites

    def test_tracer_from_trace(self):
        workload = get_workload("b_scan")
        trace = capture_workload(workload, seeds=(1,))
        offline = Tracer.from_trace(trace)
        assert len(offline) > 0
        assert "data" in offline.render() or len(offline.lines) > 0


class TestTraceContainer:
    def test_capture_has_header_and_run_markers(self):
        workload = get_workload("b_scan")
        trace = capture_workload(workload, seeds=(1, 2))
        assert trace.gpu_config == SIM_GPU
        assert [seed for seed, _ in trace.runs()] == [1, 2]
        assert all(events for _, events in trace.runs())

    def test_save_load_plain_and_gzip(self, tmp_path):
        trace = capture_workload(get_workload("b_scan"), seeds=(1,))
        plain = tmp_path / "trace.jsonl"
        packed = tmp_path / "trace.jsonl.gz"
        trace.save(plain)
        trace.save(packed)
        assert Trace.load(plain).events == trace.events
        assert Trace.load(packed).events == trace.events
        with gzip.open(packed, "rt", encoding="utf-8") as fh:
            assert fh.readline().strip().startswith('{"t":"gpu"')

    def test_trace_sink_is_zero_overhead(self):
        from repro.gpu.instructions import store

        device = Device(SIM_GPU)
        device.add_sink(TraceSink())
        a = device.alloc("a", 4)

        def kernel(ctx, arr):
            yield store(arr, ctx.tid, 1)

        run = device.launch(kernel, grid_dim=1, block_dim=4, args=(a,))
        assert run.overhead == pytest.approx(1.0)


# -- codec property tests ---------------------------------------------------

_locations = st.builds(
    ThreadLocation,
    global_tid=st.integers(0, 2**16),
    block_id=st.integers(0, 255),
    tid_in_block=st.integers(0, 1023),
    warp_id=st.integers(0, 4095),
    lane=st.integers(0, 31),
    warp_in_block=st.integers(0, 31),
)

_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.text(max_size=12),
)

_memory_events = st.builds(
    MemoryEvent,
    kind=st.sampled_from(AccessKind),
    address=st.integers(0, 2**32).map(lambda a: a * 4),
    where=_locations,
    ip=st.text(max_size=24),
    active_mask=st.frozensets(st.integers(0, 31), max_size=8),
    scope=st.sampled_from(Scope),
    atomic_op=st.one_of(st.none(), st.sampled_from(AtomicOp)),
    value_stored=_values,
    value_loaded=_values,
    compare=_values,
    batch=st.integers(0, 2**20),
)

_sync_events = st.builds(
    SyncEvent,
    kind=st.sampled_from(SyncKind),
    where=_locations,
    ip=st.text(max_size=24),
    active_mask=st.frozensets(st.integers(0, 31), max_size=8),
    scope=st.sampled_from(Scope),
    batch=st.integers(0, 2**20),
)

_alloc_events = st.builds(
    AllocEvent,
    name=st.text(min_size=1, max_size=16),
    base=st.integers(0, 2**32).map(lambda a: a * 4),
    num_words=st.integers(1, 2**20),
)

_launch_events = st.builds(
    LaunchEvent,
    kernel_name=st.text(min_size=1, max_size=24),
    grid_dim=st.integers(1, 1024),
    block_dim=st.integers(1, 1024),
    warp_size=st.sampled_from([8, 16, 32]),
    warps_per_block=st.integers(1, 32),
    num_threads=st.integers(1, 2**16),
    seed=st.integers(0, 2**31),
    static_instruction_count=st.integers(0, 2**16),
    parallelism=st.integers(1, 4608),
)

_end_events = st.builds(
    KernelEndEvent,
    kernel_name=st.text(min_size=1, max_size=24),
    timed_out=st.booleans(),
    native_parallel=st.floats(0, 1e9, allow_nan=False),
    native_serial=st.floats(0, 1e9, allow_nan=False),
    batches=st.integers(0, 2**24),
    instructions=st.integers(0, 2**24),
)

_events = st.one_of(
    _memory_events, _sync_events, _alloc_events, _launch_events, _end_events
)


class TestCodecRoundTrip:
    @given(event=_events)
    @settings(max_examples=200, deadline=None)
    def test_event_round_trips(self, event):
        assert decode_event(encode_event(event)) == event

    @given(events=st.lists(_events, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_jsonl_round_trips(self, events):
        trace = Trace(events)
        assert Trace.from_jsonl(trace.to_jsonl()).events == trace.events

    def test_gpu_config_round_trips(self):
        assert decode_event(encode_event(SIM_GPU)) == SIM_GPU
        restored = decode_event(encode_event(SIM_GPU))
        assert isinstance(restored, GPUConfig)

    def test_unknown_record_rejected(self):
        with pytest.raises(ValueError):
            decode_event({"t": "mystery"})
        with pytest.raises(TypeError):
            encode_event(object())
