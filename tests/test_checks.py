"""Unit tests for every Table 2 condition (P1-P6, R1-R5).

Each test builds the metadata entry, synchronization state, and current
access by hand, then asserts exactly which preliminary check passes or
which race condition fires — the closest thing to testing the paper's
table line by line.
"""

import pytest

from repro.core.checks import CurrentAccess, preliminary_checks, race_checks, select_md
from repro.core.metadata import MetadataEntry
from repro.core.report import RaceType
from repro.core.syncstate import SyncMetadata
from repro.gpu.events import AccessKind
from repro.gpu.instructions import Scope

WPB = 2  # warps per block used throughout


def make_entry(
    warp_id=0,
    lane=0,
    dev_fence=0,
    blk_fence=0,
    blk_bar=0,
    warp_bar=0,
    modified=True,
    atomic=False,
    scope_block=False,
    dev_shared=False,
    blk_shared=False,
    locks=0,
):
    """An entry whose accessor and writer words describe the same access."""
    e = MetadataEntry()
    e.set_accessor(tag=0, warp_id=warp_id, lane=lane, dev_fence=dev_fence,
                   blk_fence=blk_fence, blk_bar=blk_bar, warp_bar=warp_bar)
    e.set_writer(warp_id=warp_id, lane=lane, dev_fence=dev_fence,
                 blk_fence=blk_fence, blk_bar=blk_bar, warp_bar=warp_bar,
                 locks=locks)
    e.set_flag("Modified", modified)
    e.set_flag("Atomic", atomic)
    e.set_flag("Scope", scope_block)
    e.set_flag("DevShared", dev_shared)
    e.set_flag("BlkShared", blk_shared)
    return e


def make_access(kind=AccessKind.LOAD, warp_id=0, lane=0, block_id=0,
                active_mask=(), locks=0):
    return CurrentAccess(
        kind=kind, warp_id=warp_id, lane=lane, block_id=block_id,
        active_mask=frozenset(active_mask), locks_bloom=locks,
    )


def check(curr, entry, sync=None, its=True, lockset=True):
    """Run both tiers; return ('P', name) or ('R', type) or (None, None)."""
    sync = sync or SyncMetadata()
    md = select_md(entry, curr)
    passed = preliminary_checks(curr, entry, md, sync, WPB, its_support=its)
    if passed is not None:
        return ("P", passed)
    race = race_checks(curr, entry, md, sync, WPB, its_support=its,
                       lockset=lockset)
    if race is not None:
        return ("R", race)
    return (None, None)


class TestDefinitions:
    def test_load_checks_against_writer(self):
        e = MetadataEntry()
        e.set_accessor(tag=0, warp_id=1, lane=1, dev_fence=0, blk_fence=0,
                       blk_bar=0, warp_bar=0)
        e.set_writer(warp_id=2, lane=2, dev_fence=0, blk_fence=0,
                     blk_bar=0, warp_bar=0, locks=0)
        md = select_md(e, make_access(kind=AccessKind.LOAD))
        assert md.warp_id == 2

    def test_store_checks_against_accessor(self):
        e = MetadataEntry()
        e.set_accessor(tag=0, warp_id=1, lane=1, dev_fence=0, blk_fence=0,
                       blk_bar=0, warp_bar=0)
        e.set_writer(warp_id=2, lane=2, dev_fence=0, blk_fence=0,
                     blk_bar=0, warp_bar=0, locks=0)
        md = select_md(e, make_access(kind=AccessKind.STORE))
        assert md.warp_id == 1

    def test_atomic_checks_against_accessor(self):
        e = MetadataEntry()
        e.set_accessor(tag=0, warp_id=7, lane=0, dev_fence=0, blk_fence=0,
                       blk_bar=0, warp_bar=0)
        md = select_md(e, make_access(kind=AccessKind.ATOMIC))
        assert md.warp_id == 7


class TestPreliminary:
    def test_p1_first_access(self):
        assert check(make_access(), MetadataEntry()) == ("P", "P1")

    def test_p2_read_of_unmodified(self):
        e = make_entry(warp_id=1, modified=False)
        assert check(make_access(kind=AccessKind.LOAD, warp_id=0), e) == ("P", "P2")

    def test_p2_not_for_store(self):
        e = make_entry(warp_id=1, lane=0, modified=False)
        result = check(make_access(kind=AccessKind.STORE, warp_id=0, lane=1), e)
        assert result != ("P", "P2")

    def test_p3_same_thread(self):
        e = make_entry(warp_id=3, lane=2)
        curr = make_access(kind=AccessKind.STORE, warp_id=3, lane=2, block_id=1)
        assert check(curr, e) == ("P", "P3")

    def test_p3_same_thread_even_if_shared(self):
        # The deviation documented in checks.py: a thread's own program
        # order covers RMWs on shared locations.
        e = make_entry(warp_id=3, lane=2, blk_shared=True)
        curr = make_access(kind=AccessKind.STORE, warp_id=3, lane=2, block_id=1)
        assert check(curr, e) == ("P", "P3")

    def test_p3_requires_same_warp(self):
        # Lane alone must not be mistaken for thread identity.
        e = make_entry(warp_id=3, lane=2)
        curr = make_access(kind=AccessKind.STORE, warp_id=5, lane=2, block_id=2)
        assert check(curr, e) != ("P", "P3")

    def test_p4_syncwarp_separates(self):
        e = make_entry(warp_id=1, lane=0, warp_bar=0)
        sync = SyncMetadata()
        sync.on_syncwarp(1)  # live counter moved past the snapshot
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=3, block_id=0)
        assert check(curr, e, sync) == ("P", "P4")

    def test_p4_converged_active_mask(self):
        e = make_entry(warp_id=1, lane=0)
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=3,
                           block_id=0, active_mask={0, 3})
        assert check(curr, e) == ("P", "P4")

    def test_p4_fails_when_diverged_and_unsynced(self):
        e = make_entry(warp_id=1, lane=0)
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=3,
                           block_id=0, active_mask={3})
        kind, what = check(curr, e)
        assert (kind, what) == ("R", RaceType.ITS)

    def test_p4_applies_even_when_shared(self):
        # Deviation documented in checks.py: a warp-synchronized handoff
        # stays race-free even on a granule other warps once touched.
        e = make_entry(warp_id=1, lane=0, blk_shared=True)
        sync = SyncMetadata()
        sync.on_syncwarp(1)
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=3, block_id=0)
        assert check(curr, e, sync) == ("P", "P4")

    def test_p4_scord_mode_assumes_lockstep(self):
        # Without ITS support, same-warp accesses are race-free a priori.
        e = make_entry(warp_id=1, lane=0)
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=3,
                           block_id=0, active_mask={3})
        assert check(curr, e, its=False) == ("P", "P4")

    def test_p5_block_barrier_separates(self):
        e = make_entry(warp_id=0, lane=0, blk_bar=0, blk_shared=True)
        sync = SyncMetadata()
        sync.on_syncthreads(0)
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=0, block_id=0)
        assert check(curr, e, sync) == ("P", "P5")

    def test_p5_requires_same_block(self):
        e = make_entry(warp_id=0, lane=0, blk_bar=0)
        sync = SyncMetadata()
        sync.on_syncthreads(0)
        sync.on_syncthreads(1)
        curr = make_access(kind=AccessKind.STORE, warp_id=2, lane=0, block_id=1)
        assert check(curr, e, sync) != ("P", "P5")

    def test_p5_fails_without_intervening_barrier(self):
        e = make_entry(warp_id=0, lane=0, blk_bar=0, blk_shared=True)
        curr = make_access(kind=AccessKind.STORE, warp_id=1, lane=0, block_id=0)
        assert check(curr, e)[0] == "R"

    def test_p6_device_atomics_safe(self):
        e = make_entry(warp_id=9, lane=0, atomic=True, scope_block=False,
                       dev_shared=True)
        curr = make_access(kind=AccessKind.ATOMIC, warp_id=0, lane=0, block_id=0)
        assert check(curr, e) == ("P", "P6")

    def test_p6_block_atomics_safe_within_block(self):
        e = make_entry(warp_id=1, lane=0, atomic=True, scope_block=True)
        curr = make_access(kind=AccessKind.ATOMIC, warp_id=0, lane=0, block_id=0)
        assert check(curr, e) == ("P", "P6")

    def test_p6_block_atomics_unsafe_across_blocks(self):
        e = make_entry(warp_id=0, lane=0, atomic=True, scope_block=True)
        curr = make_access(kind=AccessKind.ATOMIC, warp_id=2, lane=0, block_id=1)
        assert check(curr, e) == ("R", RaceType.ATOMIC_SCOPE)


class TestRaceConditions:
    def test_r1_scoped_atomic_load(self):
        e = make_entry(warp_id=0, lane=0, atomic=True, scope_block=True)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0, block_id=1)
        assert check(curr, e) == ("R", RaceType.ATOMIC_SCOPE)

    def test_r2_intra_warp(self):
        e = make_entry(warp_id=1, lane=0)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=2,
                           block_id=0, active_mask={2})
        assert check(curr, e) == ("R", RaceType.ITS)

    def test_r2_defeated_by_fence(self):
        # The previous thread fenced since its access: not an ITS race,
        # and the intra-block condition also fails, so no race at all...
        e = make_entry(warp_id=1, lane=0, dev_fence=0)
        sync = SyncMetadata()
        sync.on_fence((1, 0), Scope.DEVICE)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=2,
                           block_id=0, active_mask={2})
        assert check(curr, e, sync) == (None, None)

    def test_r2_blocked_by_sharing(self):
        # A block-shared granule reports BR instead of ITS.
        e = make_entry(warp_id=1, lane=0, blk_shared=True)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=2,
                           block_id=0, active_mask={2})
        assert check(curr, e) == ("R", RaceType.INTRA_BLOCK)

    def test_r3_intra_block(self):
        e = make_entry(warp_id=0, lane=0, blk_shared=True)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=0, block_id=0)
        assert check(curr, e) == ("R", RaceType.INTRA_BLOCK)

    def test_r3_defeated_by_block_fence(self):
        e = make_entry(warp_id=0, lane=0, blk_shared=True)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.BLOCK)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=0, block_id=0)
        assert check(curr, e, sync) == (None, None)

    def test_r4_inter_block(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0, block_id=1)
        assert check(curr, e) == ("R", RaceType.INTER_BLOCK)

    def test_r4_defeated_by_device_fence(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.DEVICE)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0, block_id=1)
        assert check(curr, e, sync) == (None, None)

    def test_r4_not_defeated_by_block_fence(self):
        # A block-scope fence cannot order accesses across blocks.
        e = make_entry(warp_id=0, lane=0, dev_shared=True)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.BLOCK)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0, block_id=1)
        assert check(curr, e, sync) == ("R", RaceType.INTER_BLOCK)

    def test_r5_disjoint_locks(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True, locks=0b0011,
                       dev_fence=0)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.DEVICE)  # writer fenced: R2-R4 fail
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0,
                           block_id=1, locks=0b1100)
        assert check(curr, e, sync) == ("R", RaceType.IMPROPER_LOCKING)

    def test_r5_one_side_unlocked(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True, locks=0b0011)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.DEVICE)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0,
                           block_id=1, locks=0)
        assert check(curr, e, sync) == ("R", RaceType.IMPROPER_LOCKING)

    def test_r5_shared_lock_no_race(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True, locks=0b0011)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.DEVICE)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0,
                           block_id=1, locks=0b0011)
        assert check(curr, e, sync) == (None, None)

    def test_r5_no_locks_anywhere_no_race(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True, locks=0)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.DEVICE)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0,
                           block_id=1, locks=0)
        assert check(curr, e, sync) == (None, None)

    def test_r5_disabled_without_lockset(self):
        e = make_entry(warp_id=0, lane=0, dev_shared=True, locks=0b0011)
        sync = SyncMetadata()
        sync.on_fence((0, 0), Scope.DEVICE)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0,
                           block_id=1, locks=0b1100)
        assert check(curr, e, sync, lockset=False) == (None, None)


class TestOrdering:
    def test_r1_beats_r4(self):
        # A cross-block access to a block-scoped atomic granule must be
        # classified AS (R1), not DR (R4): the table checks in order.
        e = make_entry(warp_id=0, lane=0, atomic=True, scope_block=True,
                       dev_shared=True)
        curr = make_access(kind=AccessKind.LOAD, warp_id=2, lane=0, block_id=1)
        assert check(curr, e) == ("R", RaceType.ATOMIC_SCOPE)

    def test_r2_beats_r3(self):
        e = make_entry(warp_id=1, lane=0)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=2,
                           block_id=0, active_mask={2})
        assert check(curr, e) == ("R", RaceType.ITS)

    def test_scord_mode_skips_r2(self):
        e = make_entry(warp_id=1, lane=0)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=2,
                           block_id=0, active_mask={2})
        # With its_support=False the same-warp access passes P4 instead
        # of being reported as an ITS race.
        assert check(curr, e, its=False) == ("P", "P4")

    def test_scord_mode_lockstep_covers_shared_granules_too(self):
        # ScoRD's lockstep assumption orders same-warp accesses whether or
        # not the granule was ever shared across warps.
        e = make_entry(warp_id=1, lane=0, blk_shared=True)
        curr = make_access(kind=AccessKind.LOAD, warp_id=1, lane=2,
                           block_id=0, active_mask={2})
        assert check(curr, e, its=False) == ("P", "P4")
