"""Tests for the Barracuda baseline (and its documented limitations)."""

import pytest

from repro.baselines import Barracuda, CURD
from repro.errors import OutOfMemoryError, TimeoutError_, UnsupportedFeatureError
from repro.gpu.arch import TEST_GPU, GPUConfig
from repro.gpu.device import Device
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_load,
    fence_block,
    fence_device,
    load,
    store,
    syncthreads,
    syncwarp,
)

from tests.conftest import fresh_device


def run_with(tool, kernel, grid, block, arrays, seed=1):
    dev = fresh_device()
    det = dev.add_tool(tool)
    allocated = [dev.alloc(n, w, init=0) for n, w in arrays]
    dev.launch(kernel, grid, block, args=tuple(allocated), seed=seed)
    return det, allocated


class TestHappensBefore:
    def test_barrier_protected_no_race(self):
        def kern(ctx, data, out):
            yield store(data, ctx.tid, 1)
            yield syncthreads()
            v = yield load(data, ctx.block_id * ctx.block_dim
                           + (ctx.tid_in_block + 1) % ctx.block_dim)
            yield store(out, ctx.tid, v)

        det, _ = run_with(Barracuda(), kern, 2, 8, [("data", 16), ("out", 16)])
        assert det.race_count == 0

    def test_missing_barrier_detected(self):
        def kern(ctx, data, out, flag):
            if ctx.warp_in_block == 0 and ctx.lane == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_in_block == 1 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 1, 8,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 1

    def test_fenced_publication_no_race(self):
        def kern(ctx, data, out, flag):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield fence_device()
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 2, 8,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 0

    def test_unfenced_publication_detected(self):
        def kern(ctx, data, out, flag):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 2, 8,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 1

    def test_block_fence_scoped_correctly(self):
        # A block-scope fence publishes only within the block: the
        # cross-block consumer still races (Barracuda detects scoped
        # fence races; paper Table 1).
        def kern(ctx, data, out, flag):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield fence_block()
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 2, 8,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 1

    def test_block_fence_works_within_block(self):
        def kern(ctx, data, out, flag):
            if ctx.warp_in_block == 0 and ctx.lane == 0:
                yield store(data, 0, 1)
                yield fence_block()
                yield atomic_add(flag, 0, 1)
            if ctx.warp_in_block == 1 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 1, 8,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 0

    def test_fence_releases_own_writes_only(self):
        # The Figure 10 property: the leader's fence does not publish a
        # sibling's write observed through a barrier.
        def kern(ctx, data, out, flag):
            if ctx.block_id == 0:
                if ctx.tid_in_block == 1:
                    yield store(data, 0, 1)  # non-leader write
                yield syncthreads()
                if ctx.tid_in_block == 0:
                    yield fence_device()  # leader-only fence
                    yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 2, 8,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 1


class TestLimitations:
    def test_scoped_atomics_unsupported(self):
        def kern(ctx, counter):
            yield atomic_add(counter, 0, 1, scope=Scope.BLOCK)

        dev = fresh_device()
        dev.add_tool(Barracuda())
        counter = dev.alloc("counter", 1, init=0)
        with pytest.raises(UnsupportedFeatureError):
            dev.launch(kern, 1, 4, args=(counter,))

    def test_its_races_missed(self):
        # Lockstep assumption: same-warp conflicts are invisible.
        def kern(ctx, data, out, flag):
            if ctx.warp_id == 0 and ctx.lane == 1:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_id == 0 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        det, _ = run_with(Barracuda(), kern, 1, 4,
                          [("data", 1), ("out", 1), ("flag", 1)])
        assert det.race_count == 0

    def test_syncwarp_ignored_without_error(self):
        def kern(ctx, data):
            yield store(data, ctx.tid, 1)
            yield syncwarp()

        det, _ = run_with(Barracuda(), kern, 1, 4, [("data", 4)])
        assert det.race_count == 0

    def test_memory_reservation_oom(self):
        dev = Device(TEST_GPU)  # 64 MiB device
        dev.add_tool(Barracuda())
        with pytest.raises(OutOfMemoryError):
            # > 50%/1.6 of capacity: the reservation check fires.
            dev.alloc("big", (40 * 1024 * 1024) // 4)

    def test_event_budget_timeout(self):
        def kern(ctx, data):
            for i in range(50):
                yield store(data, ctx.tid, i)

        dev = fresh_device()
        dev.add_tool(Barracuda(event_budget=100))
        data = dev.alloc("data", 8, init=0)
        with pytest.raises(TimeoutError_):
            dev.launch(kern, 1, 8, args=(data,))

    def test_races_found_before_timeout_are_kept(self):
        def kern(ctx, data, out, flag):
            if ctx.warp_in_block == 0 and ctx.lane == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.warp_in_block == 1 and ctx.lane == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)
            for i in range(200):
                yield store(out, 1 + ctx.tid, i)

        dev = fresh_device()
        det = dev.add_tool(Barracuda(event_budget=600))
        data = dev.alloc("data", 1, init=0)
        out = dev.alloc("out", 16, init=0)
        flag = dev.alloc("flag", 1, init=0)
        with pytest.raises(TimeoutError_):
            dev.launch(kern, 1, 8, args=(data, out, flag), seed=1)
        assert det.gave_up


class TestCURD:
    def test_fast_path_for_barrier_only(self):
        def kern(ctx, data, out):
            yield store(data, ctx.tid, 1)
            yield syncthreads()
            v = yield load(data, ctx.block_id * ctx.block_dim
                           + (ctx.tid_in_block + 1) % ctx.block_dim)
            yield store(out, ctx.tid, v)

        dev = fresh_device()
        curd = dev.add_tool(CURD())
        data = dev.alloc("data", 16, init=0)
        out = dev.alloc("out", 16, init=0)
        dev.launch(kern, 2, 8, args=(data, out))
        assert not curd.fallback

    def test_atomics_trigger_fallback(self):
        def kern(ctx, counter):
            yield atomic_add(counter, 0, 1)

        dev = fresh_device()
        curd = dev.add_tool(CURD())
        counter = dev.alloc("counter", 1, init=0)
        dev.launch(kern, 1, 4, args=(counter,))
        assert curd.fallback

    def test_fences_trigger_fallback(self):
        def kern(ctx, data):
            yield store(data, ctx.tid, 1)
            yield fence_device()

        dev = fresh_device()
        curd = dev.add_tool(CURD())
        data = dev.alloc("data", 4, init=0)
        dev.launch(kern, 1, 4, args=(data,))
        assert curd.fallback

    def test_fast_path_is_cheaper(self):
        def barrier_kern(ctx, data):
            for _ in range(4):
                yield store(data, ctx.tid, 1)
                yield syncthreads()

        def measure(tool_cls):
            dev = fresh_device()
            dev.add_tool(tool_cls())
            data = dev.alloc("data", 8, init=0)
            run = dev.launch(barrier_kern, 1, 8, args=(data,))
            return run.overhead

        assert measure(CURD) < measure(Barracuda)

    def test_detection_still_works_on_fast_path(self):
        def kern(ctx, data, out):
            yield store(data, 0, ctx.tid)  # all threads, same word, no sync
            v = yield load(data, 0)
            yield store(out, ctx.tid, v)

        dev = fresh_device()
        curd = dev.add_tool(CURD())
        data = dev.alloc("data", 1, init=0)
        out = dev.alloc("out", 16, init=0)
        dev.launch(kern, 2, 8, args=(data, out), seed=2)
        assert curd.race_count >= 1
