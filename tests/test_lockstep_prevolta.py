"""Pre-Volta lockstep behaviour (paper section 2.1).

Before Independent Thread Scheduling, threads of a warp executed in
lockstep; programs whose warp threads wait on each other *deadlock* on
such hardware — the motivating example for ITS.  The lockstep scheduler
reproduces this: the same kernel livelocks (hits the step budget) in
lockstep mode and completes under ITS.
"""

import pytest

from repro.gpu.arch import PRE_VOLTA, TEST_GPU, GPUConfig
from repro.gpu.device import Device
from repro.gpu.instructions import atomic_add, atomic_cas, atomic_exch, atomic_load, fence_device, load, store
from repro.gpu.scheduler import SchedulerKind


def _intra_warp_handoff(ctx, flag, out):
    """Lane 1 produces; lane 0 spins for it — fine under ITS, fatal in
    lockstep if the scheduler keeps replaying the spinning branch."""
    if ctx.lane == 0:
        while (yield atomic_load(flag, 0)) == 0:
            pass
        yield store(out, 0, 1)
    elif ctx.lane == 1:
        yield atomic_add(flag, 0, 1)


class TestLockstepVsITS:
    def test_handoff_completes_under_its(self):
        dev = Device(TEST_GPU)
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 1, init=0)
        run = dev.launch(_intra_warp_handoff, 1, 4, args=(flag, out),
                         scheduler=SchedulerKind.ITS, seed=3)
        assert not run.timed_out
        assert out.read(0) == 1

    def test_handoff_livelocks_in_lockstep(self):
        # The lockstep policy always runs the "furthest behind" group —
        # lane 0's spin loop — so lane 1 never gets to set the flag:
        # the pre-Volta deadlock, surfaced as a step-budget timeout.
        dev = Device(PRE_VOLTA)
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 1, init=0)
        run = dev.launch(_intra_warp_handoff, 1, 4, args=(flag, out),
                         max_batches=2_000)
        assert run.timed_out
        assert out.read(0) == 0

    def test_per_thread_locks_livelock_in_lockstep(self):
        # The paper's canonical ITS example: threads of one warp taking
        # the same lock.  "Note that without ITS ... such programs would
        # deadlock" (section 6.6).
        def kern(ctx, locks, data):
            while (yield atomic_cas(locks, 0, 0, 1)) != 0:
                pass
            yield fence_device()
            v = yield load(data, 0)
            yield store(data, 0, v + 1)
            yield fence_device()
            yield atomic_exch(locks, 0, 0)

        dev = Device(PRE_VOLTA)
        locks = dev.alloc("locks", 1, init=0)
        data = dev.alloc("data", 1, init=0)
        run = dev.launch(kern, 1, 4, args=(locks, data), max_batches=3_000)
        assert run.timed_out  # the warp never escapes the CAS spin

        # ...while ITS hardware completes it.
        dev = Device(TEST_GPU)
        locks = dev.alloc("locks", 1, init=0)
        data = dev.alloc("data", 1, init=0)
        run = dev.launch(kern, 1, 4, args=(locks, data), seed=5)
        assert not run.timed_out
        assert data.read(0) == 4
