"""Adversarial-input hardening: fuzzer, ddmin, quarantine, budgets.

Pins the four planks of the hardening PR:

- resource budgets (``IGUARD_MEM_BUDGET`` / ``IGUARD_QUEUE_CAP`` /
  ``IGUARD_QUARANTINE``) degrade detection by recall only — never a
  false positive, never an abort, and never a report that differs
  between serial and sharded modes;
- poison-event quarantine absorbs a raising record identically in every
  replay mode (byte-identical sites + quarantine block across serial,
  inline-sharded, batched-drain, and routed-drain replays);
- the ddmin minimizer and the differential fuzzer are deterministic and
  the shipped triage corpus replays clean;
- the suite executor degrades to a partial merged report (distinct exit
  code, ``failed_cells`` block) instead of dying when a cell exhausts
  its retries, and ``--resume`` after a mid-run kill reproduces the
  uninterrupted report byte for byte with ``--shards N`` active.
"""

import base64
import gzip
import json
import os
from dataclasses import replace

import pytest

from repro.common.budget import (
    DEFAULT_QUARANTINE_LIMIT,
    DEFAULT_QUEUE_CAP,
    MAX_LINE_BYTES,
    mem_budget,
    parse_bytes,
    quarantine_limit,
    queue_cap,
)
from repro.common.rng import SplitMix64
from repro.core.config import DEFAULT_CONFIG
from repro.core.detector import IGuard
from repro.core.sharding import _drain_for, replay_trace_sharded, shard_of
from repro.engine.replay import capture_workload, replay
from repro.engine.trace import Trace
from repro.errors import (
    RetryExhaustedError,
    TraceCorruptionError,
    WorkerCrashError,
)
from repro.faults import quarantine
from repro.faults.ddmin import ddmin
from repro.faults.fuzz import (
    CODECS,
    MAX_STMTS,
    MIN_STMTS,
    base_trace_bytes,
    check_trace_bytes,
    crash_signature,
    default_corpus_dir,
    differential_check,
    gen_program,
    load_corpus,
    mutate_bytes,
    replay_entry,
    run_campaign,
    write_corpus_entry,
)
from repro.gpu.arch import GPUConfig, TITAN_RTX
from repro.gpu.events import AccessKind, MemoryEvent
from repro.gpu.instructions import AtomicOp
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _clean_quarantine():
    quarantine.reset()
    yield
    quarantine.reset()


def _capture_events():
    workload = get_workload("1dconv")
    return list(capture_workload(workload, seeds=(1,)))


@pytest.fixture(scope="module")
def captured_events():
    return _capture_events()


def _sites(tool):
    return {str(ip): str(rt) for ip, rt in sorted(
        ((str(ip), rt) for ip, rt in tool.races.sites())
    )}


def _leg(run):
    """One replay leg: (sites, quarantine snapshot) as canonical JSON."""
    quarantine.reset()
    tool = run()
    doc = {"sites": _sites(tool), "quarantine": quarantine.snapshot()}
    return json.dumps(doc, sort_keys=True)


# ---------------------------------------------------------------------------
# Budget knobs
# ---------------------------------------------------------------------------


class TestBudgetKnobs:
    def test_parse_bytes(self):
        assert parse_bytes("1024") == 1024
        assert parse_bytes("4k") == 4096
        assert parse_bytes("2M") == 2 << 20
        assert parse_bytes(" 1g ") == 1 << 30
        assert parse_bytes("0") == 0
        with pytest.raises(ValueError):
            parse_bytes("-1")

    def test_mem_budget_env(self, monkeypatch):
        monkeypatch.delenv("IGUARD_MEM_BUDGET", raising=False)
        assert mem_budget() is None
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "4k")
        assert mem_budget() == 4096
        # 0 and garbage both mean "unbounded", never an abort.
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "0")
        assert mem_budget() is None
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "banana")
        assert mem_budget() is None

    def test_queue_cap_env(self, monkeypatch):
        monkeypatch.delenv("IGUARD_QUEUE_CAP", raising=False)
        assert queue_cap() == DEFAULT_QUEUE_CAP
        monkeypatch.setenv("IGUARD_QUEUE_CAP", "128")
        assert queue_cap() == 128
        monkeypatch.setenv("IGUARD_QUEUE_CAP", "-3")
        assert queue_cap() == DEFAULT_QUEUE_CAP

    def test_quarantine_limit_env(self, monkeypatch):
        monkeypatch.delenv("IGUARD_QUARANTINE", raising=False)
        assert quarantine_limit() == DEFAULT_QUARANTINE_LIMIT
        monkeypatch.setenv("IGUARD_QUARANTINE", "0")
        assert quarantine_limit() == 0
        monkeypatch.setenv("IGUARD_QUARANTINE", "3")
        assert quarantine_limit() == 3


# ---------------------------------------------------------------------------
# Quarantine semantics
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_absorbs_and_reports(self):
        quarantine.poison(object(), ValueError("boom"), "replay")
        assert quarantine.events_absorbed() == 1
        snap = quarantine.snapshot()
        assert snap == {"events": 1, "kinds": {"ValueError": 1}}
        assert quarantine.report_block() == snap
        assert quarantine.examples()[0]["stage"] == "replay"

    def test_snapshot_is_stage_free(self):
        # The same poison event surfaces at "replay" in serial mode and
        # at "drain" in batched mode; the report block must not differ.
        quarantine.poison(object(), TypeError("t"), "replay")
        first = quarantine.snapshot()
        quarantine.reset()
        quarantine.poison(object(), TypeError("t"), "drain")
        assert quarantine.snapshot() == first

    def test_clean_report_block_is_none(self):
        assert quarantine.report_block() is None

    def test_exempt_exceptions_propagate(self):
        torn = TraceCorruptionError("t.jsonl", 1, 0, "torn")
        with pytest.raises(TraceCorruptionError):
            quarantine.poison(None, torn, "core")
        with pytest.raises(MemoryError):
            quarantine.poison(None, MemoryError(), "core")
        assert quarantine.events_absorbed() == 0

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("IGUARD_QUARANTINE", "0")
        with pytest.raises(ValueError):
            quarantine.poison(None, ValueError("x"), "replay")

    def test_limit_exhaustion_reraises(self, monkeypatch):
        monkeypatch.setenv("IGUARD_QUARANTINE", "2")
        quarantine.poison(None, ValueError("1"), "core")
        quarantine.poison(None, ValueError("2"), "core")
        with pytest.raises(ValueError):
            quarantine.poison(None, ValueError("3"), "core")
        assert quarantine.events_absorbed() == 2


# ---------------------------------------------------------------------------
# Poison-event byte identity across replay modes
# ---------------------------------------------------------------------------


def _poisoned(events):
    """Turn one mid-stream access into a poison event.

    A CAS whose ``active_mask`` is None blows up in ``infer_locks``
    (``len(None)``) — an in-detector crash on one record, exactly the
    shape quarantine exists for.
    """
    poisoned = list(events)
    mem_positions = [
        i for i, e in enumerate(poisoned)
        if isinstance(e, MemoryEvent) and e.active_mask is not None
    ]
    target = mem_positions[len(mem_positions) // 2]
    poisoned[target] = replace(
        poisoned[target],
        kind=AccessKind.ATOMIC,
        atomic_op=AtomicOp.CAS,
        active_mask=None,
        compare=0,
    )
    return poisoned


class TestPoisonByteIdentity:
    def test_all_modes_agree(self, captured_events):
        events = _poisoned(captured_events)

        def serial():
            tool = IGuard(shards=1)
            replay(events, tools=[tool])
            return tool

        def inline():
            tool = IGuard(shards=3)
            replay(events, tools=[tool])
            return tool

        def batched():
            return replay_trace_sharded(events, shards=3).tool

        def routed():
            # The columnar drain path: routes precomputed before the
            # drain loop, exactly like Chunk.mem_routes feeds them.
            gpu = next(
                (e for e in events if isinstance(e, GPUConfig)), TITAN_RTX
            )
            drain = _drain_for(DEFAULT_CONFIG, 3, None, gpu)
            granule_of = drain.tool.cores[0].table.granule_of
            routes = iter(
                [
                    (granule_of(e.address), shard_of(granule_of(e.address), 3))
                    for e in events
                    if isinstance(e, MemoryEvent)
                ]
            )
            drain.feed(events, routes=routes)
            return drain.result().tool

        legs = {
            "serial": _leg(serial),
            "inline": _leg(inline),
            "batched": _leg(batched),
            "routed": _leg(routed),
        }
        reference = legs["serial"]
        assert json.loads(reference)["quarantine"]["events"] == 1
        for name, doc in legs.items():
            assert doc == reference, name

    def test_poison_only_loses_recall(self, captured_events):
        # The poisoned run's sites are a subset of the clean run's: a
        # quarantined event can hide a race, never invent one.
        clean = json.loads(_leg(lambda: self._replay(captured_events)))
        poisoned = json.loads(
            _leg(lambda: self._replay(_poisoned(captured_events)))
        )
        assert set(poisoned["sites"].items()) <= set(clean["sites"].items())
        assert clean["quarantine"]["events"] == 0

    @staticmethod
    def _replay(events):
        tool = IGuard(shards=1)
        replay(events, tools=[tool])
        return tool

    def test_disabled_quarantine_aborts_every_mode(
        self, captured_events, monkeypatch
    ):
        monkeypatch.setenv("IGUARD_QUARANTINE", "0")
        events = _poisoned(captured_events)
        with pytest.raises(TypeError):
            replay(events, tools=[IGuard(shards=1)])
        with pytest.raises(TypeError):
            replay(events, tools=[IGuard(shards=3)])
        with pytest.raises(TypeError):
            replay_trace_sharded(events, shards=3)


# ---------------------------------------------------------------------------
# Memory budget: metadata tables and the columnar string pool
# ---------------------------------------------------------------------------


class TestMemBudget:
    def test_caps_metadata_tables(self, monkeypatch):
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "1k")
        entry = DEFAULT_CONFIG.metadata_entry_bytes
        tool = IGuard(shards=1)
        assert tool.cores[0].table.max_entries == 1024 // entry
        sharded = IGuard(shards=4)
        for core in sharded.cores:
            assert core.table.max_entries == 1024 // entry // 4

    def test_explicit_cap_wins_over_budget(self, monkeypatch):
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "1k")
        config = replace(DEFAULT_CONFIG, metadata_max_entries=5)
        tool = IGuard(config=config, shards=1)
        assert tool.cores[0].table.max_entries == 5

    def test_budgeted_run_loses_only_recall(
        self, captured_events, monkeypatch
    ):
        def run():
            tool = IGuard(shards=1)
            replay(captured_events, tools=[tool])
            return _sites(tool)

        monkeypatch.delenv("IGUARD_MEM_BUDGET", raising=False)
        full = run()
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "2k")
        capped = run()
        assert set(capped.items()) <= set(full.items())

    def test_pool_writer_fifo_eviction(self):
        from repro.engine.coltrace import _PoolWriter

        pool = _PoolWriter(byte_budget=64)
        indices = [pool.add(f"kernel-{i}.cu:{i}" * 3) for i in range(32)]
        assert indices == list(range(32))  # monotonic, never reused
        assert pool.evictions > 0
        # A re-encountered evicted string gets a *fresh* index — the
        # container stays decodable, only the dedup ratio degrades.
        assert pool.add("kernel-0.cu:0" * 3) == 32

    def test_budgeted_container_roundtrips_bit_exact(
        self, captured_events, monkeypatch, tmp_path
    ):
        from repro.engine.coltrace import read_events, write_columnar

        plain = tmp_path / "plain.ctr"
        squeezed = tmp_path / "squeezed.ctr"
        monkeypatch.delenv("IGUARD_MEM_BUDGET", raising=False)
        with open(plain, "wb") as handle:
            write_columnar(handle, captured_events)
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "256")
        with open(squeezed, "wb") as handle:
            write_columnar(handle, captured_events)
        monkeypatch.delenv("IGUARD_MEM_BUDGET", raising=False)
        reference, _ = read_events(str(plain))
        evicted, _ = read_events(str(squeezed))
        assert list(map(repr, evicted)) == list(map(repr, reference))


# ---------------------------------------------------------------------------
# Decoder limits
# ---------------------------------------------------------------------------


class TestDecoderLimits:
    def test_default_line_limit_unbudgeted(self, monkeypatch):
        from repro.common.budget import line_limit

        monkeypatch.delenv("IGUARD_MEM_BUDGET", raising=False)
        assert line_limit() == MAX_LINE_BYTES
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "1k")
        assert line_limit() == 1024

    def test_jsonl_line_over_budget_is_corruption(
        self, captured_events, monkeypatch, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        trace = Trace(captured_events)
        trace.save(str(path))
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "64")
        with pytest.raises(TraceCorruptionError):
            Trace.load(str(path))
        # The salvage contract holds even when every line is oversized.
        salvaged = Trace.load(str(path), salvage=True)
        assert salvaged.corruption is not None

    def test_columnar_block_over_budget_is_corruption(
        self, captured_events, monkeypatch, tmp_path
    ):
        from repro.engine.coltrace import write_columnar

        path = tmp_path / "t.ctr"
        with open(path, "wb") as handle:
            write_columnar(handle, captured_events)
        monkeypatch.setenv("IGUARD_MEM_BUDGET", "1k")
        with pytest.raises(TraceCorruptionError):
            Trace.load(str(path))
        salvaged = Trace.load(str(path), salvage=True)
        assert salvaged.corruption is not None


# ---------------------------------------------------------------------------
# Queue cap backpressure
# ---------------------------------------------------------------------------


class TestQueueBackpressure:
    def test_tiny_cap_is_output_identical(self, captured_events, monkeypatch):
        monkeypatch.delenv("IGUARD_QUEUE_CAP", raising=False)
        reference = _leg(
            lambda: replay_trace_sharded(captured_events, shards=3).tool
        )
        monkeypatch.setenv("IGUARD_QUEUE_CAP", "7")
        capped = _leg(
            lambda: replay_trace_sharded(captured_events, shards=3).tool
        )
        assert capped == reference

    def test_batched_driver_cap_identical(self, captured_events, monkeypatch):
        from repro.core.sharding import BatchShardedIGuard

        def run():
            tool = BatchShardedIGuard(shards=3)
            replay(captured_events, tools=[tool])
            return tool

        monkeypatch.delenv("IGUARD_QUEUE_CAP", raising=False)
        reference = _leg(run)
        monkeypatch.setenv("IGUARD_QUEUE_CAP", "5")
        assert _leg(run) == reference


# ---------------------------------------------------------------------------
# ddmin
# ---------------------------------------------------------------------------


class TestDdmin:
    def test_minimizes_to_exact_culprits(self):
        culprits = {3, 7, 11}
        result = ddmin(
            list(range(16)), lambda c: culprits <= set(c)
        )
        assert sorted(result) == sorted(culprits)

    def test_single_culprit(self):
        assert ddmin(list(range(64)), lambda c: 42 in c) == [42]

    def test_preserves_order(self):
        result = ddmin(list("abcdef"), lambda c: "b" in c and "e" in c)
        assert result == ["b", "e"]

    def test_budget_exhaustion_still_reproduces(self):
        tests = {"count": 0}

        def predicate(candidate):
            tests["count"] += 1
            return {5, 25, 45} <= set(candidate)

        result = ddmin(list(range(64)), predicate, max_tests=6)
        assert predicate(result)  # best-so-far, never a non-repro

    def test_trivial_inputs(self):
        assert ddmin([], lambda c: True) == []
        assert ddmin([1], lambda c: 1 in c) == [1]


# ---------------------------------------------------------------------------
# Fuzzer units
# ---------------------------------------------------------------------------


class TestFuzzer:
    def test_gen_program_deterministic_and_jsonable(self):
        first = gen_program(SplitMix64(99))
        second = gen_program(SplitMix64(99))
        assert first == second
        assert MIN_STMTS <= len(first) <= MAX_STMTS
        assert json.loads(json.dumps(first)) == first

    def test_differential_check_clean_program(self):
        assert differential_check(gen_program(SplitMix64(1))) is None

    def test_crash_signature_names_repro_frame(self):
        try:
            parse_bytes("-1")
        except ValueError as exc:
            assert crash_signature(exc) == "ValueError@budget.py:parse_bytes"

    def test_mutate_bytes_deterministic(self):
        data = bytes(range(256)) * 4
        assert mutate_bytes(data, SplitMix64(5)) == mutate_bytes(
            data, SplitMix64(5)
        )

    def test_base_containers_pass_oracle(self):
        containers = base_trace_bytes(SplitMix64(11))
        assert set(containers) == set(CODECS)
        for codec, data in containers.items():
            assert check_trace_bytes(data, codec) is None, codec

    def test_small_campaign_is_clean_and_deterministic(self):
        kwargs = dict(seed=1, max_inputs=24, budget_s=60.0, minimize=False)
        first = run_campaign(**kwargs)
        second = run_campaign(**kwargs)
        assert first["failures"] == []
        assert first["inputs"] == 24
        assert first["programs"] + first["trace_mutations"] == 24
        drop_timing = lambda d: {
            k: v
            for k, v in d.items()
            if k not in ("elapsed_s", "inputs_per_sec")
        }
        assert drop_timing(first) == drop_timing(second)


# ---------------------------------------------------------------------------
# Triage corpus
# ---------------------------------------------------------------------------


class TestCorpus:
    def test_write_load_replay_roundtrip(self, tmp_path):
        data = base_trace_bytes(SplitMix64(2))["jsonl"]
        entry = {
            "input": "trace",
            "kind": "crash",
            "signature": "ValueError@fake.py:decode",
            "detail": "unit-test entry",
            "codec": "jsonl",
            "data_b64": base64.b64encode(data).decode("ascii"),
            "minimized": True,
            "found_by_seed": 0,
        }
        path = write_corpus_entry(str(tmp_path), entry)
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0][0] == path
        assert replay_entry(loaded[0][1]) is None

    def test_shipped_corpus_replays_clean(self):
        entries = load_corpus(default_corpus_dir())
        assert entries, "shipped triage corpus must not be empty"
        for name, entry in entries:
            assert replay_entry(entry) is None, name


# ---------------------------------------------------------------------------
# Partial merged reports (suite executor degradation)
# ---------------------------------------------------------------------------


def _crash_on_three(item):
    if item == 3:
        os._exit(17)
    return item * 10


class TestPartialReport:
    def test_supervisor_attaches_partial_results(self):
        from repro.engine.parallel import parallel_map

        with pytest.raises((RetryExhaustedError, WorkerCrashError)) as info:
            parallel_map(
                _crash_on_three,
                [0, 1, 2, 3],
                workers=2,
                max_retries=1,
                backoff_base=0.01,
            )
        exc = info.value
        assert exc.total_items == 4
        for position, value in exc.partial_results.items():
            assert value == position * 10

    def test_runner_degrades_to_partial(self, monkeypatch):
        from repro.workloads import runner as runner_module

        real_task = runner_module._run_seed_task

        def exploding_map(fn, items, workers, **kwargs):
            exc = RetryExhaustedError("cell", 3, "injected")
            # The first cell completed before the executor gave up.
            exc.partial_results = {0: real_task(items[0])}
            exc.total_items = len(items)
            raise exc

        monkeypatch.setattr(runner_module, "parallel_map", exploding_map)
        result = runner_module.run_workload(
            get_workload("1dconv"),
            runner_module.DetectorFactory(IGuard, shards=1),
            seeds=(1, 2),
            workers=2,
        )
        assert result.status == "partial"
        assert len(result.failed_cells) == 1
        assert "injected" in result.failed_cells[0]
        assert result.races >= 0  # surviving cell still merged

    def test_cli_exit_code_and_report_block(self, monkeypatch, tmp_path):
        from repro.workloads import runner as runner_module

        real_task = runner_module._run_seed_task

        def exploding_map(fn, items, workers, **kwargs):
            exc = RetryExhaustedError("cell", 3, "injected")
            exc.partial_results = {0: real_task(items[0])}
            exc.total_items = len(items)
            raise exc

        monkeypatch.setattr(runner_module, "parallel_map", exploding_map)
        report = tmp_path / "report.json"
        rc = runner_module.main(
            [
                "--workload", "1dconv",
                "--workers", "2",
                "--report-json", str(report),
            ]
        )
        assert rc == 3
        payload = json.loads(report.read_text())
        assert payload["status"] == "partial"
        assert payload["failed_cells"]


# ---------------------------------------------------------------------------
# Resume after a mid-run kill with sharding active (satellite)
# ---------------------------------------------------------------------------


class TestShardedResumeAfterKill:
    def test_resume_reproduces_uninterrupted_report(self, tmp_path):
        from repro.workloads import runner as runner_module

        base = tmp_path / "base.json"
        rc = runner_module.main(
            [
                "--workload", "1dconv",
                "--shards", "2",
                "--workers", "2",
                "--report-json", str(base),
            ]
        )
        assert rc == 0

        journal = tmp_path / "cells.journal"
        full = tmp_path / "full.json"
        rc = runner_module.main(
            [
                "--workload", "1dconv",
                "--shards", "2",
                "--workers", "2",
                "--checkpoint", str(journal),
                "--report-json", str(full),
            ]
        )
        assert rc == 0
        assert full.read_bytes() == base.read_bytes()

        # Simulate a mid-run kill: keep the first journaled cell and a
        # torn half-written second line, then resume.
        lines = journal.read_bytes().split(b"\n")
        assert len([l for l in lines if l]) >= 3
        journal.write_bytes(lines[0] + b"\n" + lines[1][: len(lines[1]) // 2])
        resumed = tmp_path / "resumed.json"
        rc = runner_module.main(
            [
                "--workload", "1dconv",
                "--shards", "2",
                "--workers", "2",
                "--checkpoint", str(journal),
                "--resume",
                "--report-json", str(resumed),
            ]
        )
        assert rc == 0
        assert resumed.read_bytes() == base.read_bytes()


# ---------------------------------------------------------------------------
# Watchdog rule and gzip salvage regressions
# ---------------------------------------------------------------------------


class _SampleStub:
    counters = {}
    interval = 1.0


class TestWatchdogQuarantineRule:
    def test_fires_on_absorbed_events(self):
        from repro.obs.watchdog import Watchdog, WatchdogConfig

        wd = Watchdog(WatchdogConfig())
        fired = wd.observe(
            _SampleStub(),
            [],
            {"quarantine.events": {"value": 2}},
            now=100.0,
        )
        rules = [f.rule for f in fired]
        assert "event_quarantine" in rules

    def test_silent_when_clean(self):
        from repro.obs.watchdog import Watchdog, WatchdogConfig

        wd = Watchdog(WatchdogConfig())
        fired = wd.observe(_SampleStub(), [], {}, now=100.0)
        assert [f.rule for f in fired] == []


class TestGzipSalvage:
    def test_truncated_gzip_member_is_corruption(
        self, captured_events, tmp_path
    ):
        plain = tmp_path / "t.jsonl"
        Trace(captured_events).save(str(plain))
        payload = gzip.compress(plain.read_bytes(), mtime=0)
        torn = tmp_path / "torn.jsonl.gz"
        torn.write_bytes(payload[: len(payload) - 20])
        with pytest.raises(TraceCorruptionError):
            Trace.load(str(torn))
        salvaged = Trace.load(str(torn), salvage=True)
        assert salvaged.corruption is not None

    def test_flipped_ctr_gz_byte_never_escapes(
        self, captured_events, tmp_path
    ):
        import io

        from repro.engine.coltrace import write_columnar

        buffer = io.BytesIO()
        write_columnar(buffer, captured_events)
        data = bytearray(gzip.compress(buffer.getvalue(), mtime=0))
        data[len(data) // 2] ^= 0x40
        assert check_trace_bytes(bytes(data), "ctr.gz") is None
