"""The columnar trace container (``repro.engine.coltrace``).

Three contracts:

- **round-trip** — any event stream the JSONL codec accepts survives
  JSONL ↔ columnar translation bit-exactly, including the optional
  value fields (``value_stored``/``value_loaded``/``compare``);
- **salvage** — a truncated ``.ctr`` recovers its longest intact chunk
  prefix under the same :class:`TraceCorruptionError` forensics contract
  as the JSONL reader;
- **replay equivalence** — replaying the columnar container produces
  canonical workload reports byte-identical to the JSONL replay, for
  IGuard and FastTrack, serial and batch-sharded.
"""

import gzip
import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FastTrack
from repro.core import IGuard
from repro.core.sharding import (
    BatchShardedFastTrack,
    BatchShardedIGuard,
    replay_columnar_sharded,
    shard_of,
)
from repro.engine import Trace, capture_workload, replay_workload
from repro.engine.coltrace import (
    is_columnar_path,
    iter_chunks,
    read_events,
    save_columnar,
    write_columnar,
)
from repro.errors import TraceCorruptionError
from repro.workloads import get_workload
from repro.workloads.runner import DetectorFactory

from tests.test_engine_trace import _events

#: The replay-equivalence matrix, per the PR: 4 racy + 3 race-free.
RACY = ("matrix-mult", "reduction", "graph-color", "reduceMB")
RACE_FREE = ("warpAA", "b_reduce", "b_scan")


def _round_trip(events, chunk_rows):
    buffer = io.BytesIO()
    write_columnar(buffer, events, chunk_rows=chunk_rows)
    restored, corruption = read_events(io.BytesIO(buffer.getvalue()))
    assert corruption is None
    return restored


class TestColumnarRoundTrip:
    @given(events=st.lists(_events, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_any_stream_round_trips(self, events):
        # chunk_rows smaller than the stream forces multi-chunk traces,
        # exercising the cross-chunk string pool and memo reuse.
        assert _round_trip(events, chunk_rows=7) == events

    @given(events=st.lists(_events, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_matches_jsonl_codec(self, events):
        trace = Trace(events)
        via_jsonl = Trace.from_jsonl(trace.to_jsonl()).events
        assert _round_trip(events, chunk_rows=5) == via_jsonl

    def test_exotic_values_round_trip(self):
        from repro.gpu.events import AccessKind, MemoryEvent
        from repro.gpu.ids import ThreadLocation
        from repro.gpu.instructions import Scope

        where = ThreadLocation(global_tid=1, block_id=0, tid_in_block=1,
                               warp_id=0, lane=1, warp_in_block=0)
        events = [
            MemoryEvent(
                kind=AccessKind.STORE, address=64, where=where, ip="k:1",
                active_mask=frozenset([1]), scope=Scope.DEVICE,
                value_stored=value, batch=0,
            )
            for value in (None, True, False, 0, -1, 2**70, -(2**70),
                          3.25, float("inf"), "text", 2**62)
        ]
        restored = _round_trip(events, chunk_rows=4)
        assert restored == events
        # Bit-exact, not just equal: bools stay bools, ints stay ints.
        for original, copy in zip(events, restored):
            assert type(copy.value_stored) is type(original.value_stored)

    def test_file_save_load_dispatch(self, tmp_path):
        trace = capture_workload(get_workload("b_scan"), seeds=(1,))
        plain = tmp_path / "trace.ctr"
        packed = tmp_path / "trace.ctr.gz"
        trace.save(plain)
        trace.save(packed)
        assert Trace.load(plain).events == trace.events
        assert Trace.load(packed).events == trace.events
        assert is_columnar_path(plain) and is_columnar_path(packed)
        assert not is_columnar_path(tmp_path / "trace.jsonl")

    def test_convert_both_directions(self, tmp_path):
        from repro.experiments.tracecli import main as trace_main

        trace = capture_workload(get_workload("reduction"), seeds=(1,))
        jsonl = tmp_path / "a.jsonl"
        ctr = tmp_path / "a.ctr"
        back = tmp_path / "b.jsonl"
        trace.save(jsonl)
        assert trace_main(["convert", str(jsonl), str(ctr)]) == 0
        assert trace_main(["convert", str(ctr), str(back)]) == 0
        assert back.read_bytes() == jsonl.read_bytes()

    def test_vectorized_routes_match_scalar_hash(self, tmp_path):
        trace = capture_workload(get_workload("reduction"), seeds=(1,))
        path = tmp_path / "t.ctr"
        save_columnar(trace.events, path, chunk_rows=128)
        checked = 0
        for chunk in iter_chunks(str(path)):
            granules, shards = chunk.mem_routes(4, 4)
            mem = [e for e in chunk.events() if hasattr(e, "address")]
            assert len(granules) == len(mem)
            for event, granule, shard in zip(mem, granules, shards):
                assert granule == event.address >> 2
                assert shard == shard_of(granule, 4)
                checked += 1
        assert checked > 0


def _columnar_pattern_trace(tmp_path, chunk_rows=64, suffix=""):
    trace = capture_workload(get_workload("reduction"), seeds=(1, 2))
    path = str(tmp_path / f"trace.ctr{suffix}")
    save_columnar(trace.events, path, chunk_rows=chunk_rows)
    return path, len(trace.events), chunk_rows


class TestColumnarSalvage:
    """Mirrors the JSONL TestTraceSalvage contract at chunk granularity."""

    def test_truncation_raises_with_forensics(self, tmp_path):
        path, total, chunk_rows = _columnar_pattern_trace(tmp_path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) - 9])
        with pytest.raises(TraceCorruptionError) as info:
            Trace.load(path)
        assert 0 <= info.value.events_recovered < total
        assert info.value.events_recovered % chunk_rows == 0
        assert info.value.line >= 2  # block ordinal; file header is 1
        assert info.value.last_good_offset > 0
        assert "corrupt trace at line" in str(info.value)

    def test_salvage_returns_chunk_prefix(self, tmp_path):
        path, total, chunk_rows = _columnar_pattern_trace(tmp_path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: (len(raw) * 3) // 4])
        trace = Trace.load(path, salvage=True)
        assert 0 < len(trace.events) < total
        assert len(trace.events) % chunk_rows == 0
        assert trace.corruption is not None
        assert trace.corruption.events_recovered == len(trace.events)

    def test_truncated_gzip_stream(self, tmp_path):
        path, total, chunk_rows = _columnar_pattern_trace(
            tmp_path, suffix=".gz"
        )
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(TraceCorruptionError):
            Trace.load(path)
        trace = Trace.load(path, salvage=True)
        assert 0 <= len(trace.events) < total
        assert trace.corruption is not None

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "bad.ctr"
        path.write_bytes(b'{"format": "something-else", "version": 1}\n')
        with pytest.raises(TraceCorruptionError):
            Trace.load(path)
        trace = Trace.load(path, salvage=True)
        assert trace.events == []

    def test_intact_trace_has_no_corruption(self, tmp_path):
        path, total, _ = _columnar_pattern_trace(tmp_path)
        trace = Trace.load(path)
        assert len(trace.events) == total
        assert trace.corruption is None


def _canonical_report(result):
    """The runner's canonical payload, serialized for byte comparison."""
    payload = {
        "workload": result.workload,
        "detector": result.detector,
        "status": result.status,
        "races": result.races,
        "race_sites": [[ip, t] for ip, t in result.race_sites],
        "overhead": result.overhead,
        "native_time": result.native_time,
        "total_time": result.total_time,
        "breakdown": dict(sorted(result.breakdown.items())),
        "detail": result.detail,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _factories(shards):
    return {
        "iguard-serial": DetectorFactory(IGuard),
        "iguard-batched": DetectorFactory(BatchShardedIGuard, shards=shards),
        "fasttrack-serial": DetectorFactory(FastTrack, shards=1),
        "fasttrack-batched": DetectorFactory(
            BatchShardedFastTrack, shards=shards
        ),
    }


class TestReplayEquivalence:
    """Columnar replay reports are byte-identical to JSONL replay."""

    @pytest.mark.parametrize("name", RACY + RACE_FREE)
    def test_formats_agree_across_detectors_and_drivers(
        self, name, tmp_path
    ):
        workload = get_workload(name)
        trace = capture_workload(workload, seeds=workload.seeds[:1])
        jsonl = tmp_path / "t.jsonl"
        ctr = tmp_path / "t.ctr"
        trace.save(jsonl)
        trace.save(ctr)
        for label, factory in _factories(shards=4).items():
            reports = {
                str(path): _canonical_report(
                    replay_workload(Trace.load(path), factory, name)
                )
                for path in (jsonl, ctr)
            }
            jsonl_report, ctr_report = reports[str(jsonl)], reports[str(ctr)]
            assert jsonl_report == ctr_report, f"{name}/{label} diverged"

    @pytest.mark.parametrize("name", RACY[:2] + RACE_FREE[:1])
    def test_streaming_drain_matches_serial_sites(self, name, tmp_path):
        # The chunk-streaming driver (vectorized routing, batched drain)
        # must find exactly the serial pipeline's races.
        workload = get_workload(name)
        trace = capture_workload(workload, seeds=workload.seeds[:1])
        path = tmp_path / "t.ctr"
        save_columnar(trace.events, path, chunk_rows=256)
        serial = replay_workload(Trace.load(path), DetectorFactory(IGuard), name)
        sharded = replay_columnar_sharded(str(path), shards=4)
        streamed = {
            ip: getattr(t, "value", t)
            for ip, t in sharded.tool.races.sites()
        }
        expected = {
            ip: getattr(t, "value", t) for ip, t in serial.race_sites
        }
        assert streamed == expected
        assert sharded.events > 0
