"""The chaos harness: mutators, recall gate, chaos spec, checkpointing,
trace salvage, and graceful degradation under metadata pressure."""

import gzip
import json
import os

import pytest

from repro.core import IGuard
from repro.core.config import IGuardConfig
from repro.engine import checkpoint as ckpt
from repro.engine.trace import Trace, TraceSink
from repro.errors import ConfigError, TraceCorruptionError
from repro.faults import chaos
from repro.faults.mutators import MutationSpec, install
from repro.faults.recall import (
    render,
    report_passed,
    run_recall,
    select_mutations,
)
from repro.faults.workloads import FAULT_PATTERNS, get_pattern, total_mutations
from repro.gpu.device import Device
from repro.workloads import get_workload, run_workload
from repro.workloads.base import SIM_GPU


def _races_of(pattern, seed, spec=None, config=None):
    """Run one pattern (optionally mutated) and return {ip: type-tag}."""
    device = Device(SIM_GPU)
    tool = device.add_tool(IGuard(config) if config else IGuard())
    if spec is not None:
        install(spec, device)
    pattern.workload.run(device, seed)
    return {ip: str(t) for ip, t in tool.races.sites()}, tool


class TestPatternBaselines:
    """Every pattern is genuinely race-free until a mutation breaks it."""

    @pytest.mark.parametrize(
        "name", [p.name for p in FAULT_PATTERNS]
    )
    def test_baseline_race_free(self, name):
        pattern = get_pattern(name)
        for seed in pattern.workload.seeds:
            sites, _ = _races_of(pattern, seed)
            assert sites == {}, f"{name} baseline raced at seed {seed}"


class TestMutantDetection:
    """Acceptance: every sync-removal mutant is detected with the
    annotated Table 2 race type."""

    @pytest.mark.parametrize(
        "name,mutation",
        [(p.name, m.name) for p in FAULT_PATTERNS for m in p.mutations],
    )
    def test_mutant_detected_with_expected_type(self, name, mutation):
        pattern = get_pattern(name)
        spec = pattern.mutation(mutation)
        types = set()
        applied = 0
        for seed in pattern.workload.seeds:
            device = Device(SIM_GPU)
            tool = device.add_tool(IGuard())
            mutator = install(spec, device)
            pattern.workload.run(device, seed)
            applied += mutator.applied
            types |= {str(t) for _, t in tool.races.sites()}
        assert applied > 0, f"{mutation} never fired on {name}"
        assert spec.expected_type in types, (
            f"{name}/{mutation} ({spec.condition}): expected "
            f"{spec.expected_type}, detected {sorted(types) or 'nothing'}"
        )

    def test_every_condition_annotated(self):
        for pattern in FAULT_PATTERNS:
            for spec in pattern.mutations:
                assert spec.condition.startswith("R")
                assert spec.expected_type in ("AS", "ITS", "BR", "DR", "IL")

    def test_total_mutations_counts_all(self):
        assert total_mutations() == sum(
            len(p.mutations) for p in FAULT_PATTERNS
        )


class TestMutationSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            MutationSpec(
                name="x", kind="explode", condition="R1", expected_type="AS"
            )


class TestRecallGate:
    def test_gate_passes_and_report_is_deterministic(self):
        first = run_recall(seed=1)
        second = run_recall(seed=1)
        assert report_passed(first)
        assert first["summary"]["missed"] == 0
        assert first["summary"]["mutants"] == total_mutations()
        dump = lambda r: json.dumps(r, indent=2, sort_keys=True)
        assert dump(first) == dump(second)

    def test_parallel_matches_serial(self):
        names = ["warp-exchange", "scoped-counter"]
        serial = run_recall(workload_names=names, workers=1)
        parallel = run_recall(workload_names=names, workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_select_mutations_is_seeded_subset(self):
        pattern = get_pattern("ff-pipeline")
        subset = select_mutations(pattern, 1, seed=7)
        assert len(subset) == 1
        assert subset == select_mutations(pattern, 1, seed=7)
        assert set(subset) <= set(pattern.mutations)
        assert select_mutations(pattern, None, seed=7) == pattern.mutations

    def test_render_mentions_every_mutation(self):
        report = run_recall(workload_names=["warp-exchange"])
        text = render(report)
        assert "skip-syncwarp" in text and "detected" in text

    def test_journal_resume_byte_identical(self, tmp_path):
        path = tmp_path / "recall.journal"
        names = ["ff-pipeline"]
        baseline = run_recall(workload_names=names)
        journal = ckpt.CellJournal(path)
        first = run_recall(workload_names=names, journal=journal)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )
        resumed_journal = ckpt.CellJournal(path, resume=True)
        resumed = run_recall(workload_names=names, journal=resumed_journal)
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )
        # Every cell came from the journal, none re-executed.
        assert resumed_journal.resumed_cells == len(resumed_journal)


class TestChaosSpec:
    def test_parse_round_trip(self):
        spec = chaos.ChaosSpec.parse("crash=0.3,hang=0.2,seed=11,hang_s=120")
        assert spec.crash == 0.3 and spec.hang == 0.2
        assert spec.seed == 11 and spec.hang_s == 120.0
        assert spec.times == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            chaos.ChaosSpec.parse("crash")
        with pytest.raises(ConfigError):
            chaos.ChaosSpec.parse("warp=0.5")
        with pytest.raises(ConfigError):
            chaos.ChaosSpec.parse("crash=lots")

    def test_fault_decisions_are_deterministic(self):
        spec = chaos.ChaosSpec.parse("crash=0.5,flake=0.3,seed=9")
        decisions = [spec.fault_for(f"cell-{i}", 1) for i in range(64)]
        assert decisions == [
            spec.fault_for(f"cell-{i}", 1) for i in range(64)
        ]
        assert "crash" in decisions and "flake" in decisions

    def test_faults_stop_after_times_attempts(self):
        spec = chaos.ChaosSpec.parse("crash=1.0,seed=1,times=2")
        assert spec.fault_for("cell", 1) == "crash"
        assert spec.fault_for("cell", 2) == "crash"
        assert spec.fault_for("cell", 3) is None

    def test_active_spec_reads_environment(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        assert chaos.active_spec() is None
        monkeypatch.setenv(chaos.ENV_VAR, "flake=1.0,seed=2")
        spec = chaos.active_spec()
        assert spec is not None and spec.flake == 1.0

    def test_maybe_inject_flake_raises(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "flake=1.0,seed=2")
        with pytest.raises(chaos.ChaosFault):
            chaos.maybe_inject("some-cell", 1)
        # Past the fault budget the same cell passes clean.
        chaos.maybe_inject("some-cell", 2)


class TestCheckpoint:
    def test_outcome_codec_round_trip(self):
        from repro.workloads.runner import _run_one_seed

        workload = get_workload("1dconv")
        outcome = _run_one_seed(workload, IGuard, SIM_GPU, 1)
        encoded = json.loads(json.dumps(ckpt.encode_outcome(outcome)))
        assert ckpt.decode_outcome(encoded) == outcome

    def test_journal_survives_partial_trailing_line(self, tmp_path):
        path = tmp_path / "cells.journal"
        journal = ckpt.CellJournal(path)
        journal.record("a", {"v": 1})
        journal.record("b", {"v": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"k": "c", "o"')  # crash mid-append
        resumed = ckpt.CellJournal(path, resume=True)
        assert "a" in resumed and "b" in resumed and "c" not in resumed
        assert resumed.get("a") == {"v": 1}

    def test_fresh_journal_truncates_stale_file(self, tmp_path):
        path = tmp_path / "cells.journal"
        ckpt.CellJournal(path).record("old", {"v": 0})
        fresh = ckpt.CellJournal(path)  # resume=False
        assert len(fresh) == 0
        assert "old" not in ckpt.CellJournal(path, resume=True)

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "cells.journal"
        journal = ckpt.CellJournal(path)
        journal.record("k", {"v": 1})
        journal.record("k", {"v": 2})  # raced duplicate: first wins
        resumed = ckpt.CellJournal(path, resume=True)
        assert resumed.get("k") == {"v": 1}

    def test_cell_key_embeds_config_fingerprint(self):
        key = ckpt.cell_key("wl", "iguard", 3, SIM_GPU)
        assert key.startswith("wl|iguard|s3|")
        other = ckpt.cell_key("wl", "iguard", 3, IGuardConfig())
        assert key != other

    def test_run_workload_resume_byte_identical(self, tmp_path):
        path = tmp_path / "wl.journal"
        workload = get_workload("b_scan")
        baseline = run_workload(workload, IGuard, seeds=(1, 2))
        journal = ckpt.CellJournal(path)
        first = run_workload(workload, IGuard, seeds=(1, 2), journal=journal)
        assert first == baseline
        resumed_journal = ckpt.CellJournal(path, resume=True)
        resumed = run_workload(
            workload, IGuard, seeds=(1, 2), journal=resumed_journal
        )
        assert resumed == baseline
        assert resumed_journal.resumed_cells == 2

    def test_ambient_journal_set_and_clear(self, tmp_path):
        journal = ckpt.CellJournal(tmp_path / "ambient.journal")
        try:
            ckpt.set_active(journal)
            assert ckpt.active_journal() is journal
        finally:
            ckpt.set_active(None)
        assert ckpt.active_journal() is None


def _record_pattern_trace(tmp_path, suffix=""):
    pattern = get_pattern("ff-pipeline")
    device = Device(SIM_GPU)
    sink = device.add_sink(TraceSink())
    pattern.workload.run(device, 1)
    path = str(tmp_path / f"trace.jsonl{suffix}")
    sink.trace.save(path)
    return path, len(sink.trace)


class TestTraceSalvage:
    def test_corrupt_line_raises_with_forensics(self, tmp_path):
        path, total = _record_pattern_trace(tmp_path)
        lines = open(path, "rb").read().splitlines(keepends=True)
        cut = total // 2
        with open(path, "wb") as handle:
            handle.write(b"".join(lines[:cut]) + lines[cut][:7])
        with pytest.raises(TraceCorruptionError) as info:
            Trace.load(path)
        assert info.value.line == cut + 1
        assert info.value.events_recovered == cut
        assert info.value.last_good_offset == sum(
            len(line) for line in lines[:cut]
        )
        assert "corrupt trace at line" in str(info.value)

    def test_salvage_returns_intact_prefix(self, tmp_path):
        path, total = _record_pattern_trace(tmp_path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) - 9])  # clip the final record
        trace = Trace.load(path, salvage=True)
        assert len(trace) == total - 1
        assert trace.corruption is not None
        assert trace.corruption.events_recovered == total - 1

    def test_truncated_gzip_stream(self, tmp_path):
        path, total = _record_pattern_trace(tmp_path, suffix=".gz")
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(TraceCorruptionError):
            Trace.load(path)
        trace = Trace.load(path, salvage=True)
        assert 0 < len(trace) < total
        assert trace.corruption is not None

    def test_intact_trace_has_no_corruption(self, tmp_path):
        path, total = _record_pattern_trace(tmp_path)
        trace = Trace.load(path)
        assert len(trace) == total
        assert trace.corruption is None


class TestMetadataPressure:
    """A finite metadata table degrades recall, never soundness."""

    def test_cap_validation(self):
        with pytest.raises(ConfigError):
            IGuardConfig(metadata_max_entries=0)
        assert IGuardConfig(metadata_max_entries=8).metadata_max_entries == 8

    def test_race_free_pattern_stays_race_free_under_pressure(self):
        pattern = get_pattern("barrier-handoff")
        for cap, evicts in ((1, True), (2, True), (8, False)):
            sites, tool = _races_of(
                pattern, 1, config=IGuardConfig(metadata_max_entries=cap)
            )
            assert sites == {}, f"cap {cap} invented a race"
            assert (tool.table.evictions > 0) is evicts

    def test_pressure_only_loses_races_never_invents(self):
        workload = get_workload("graph-color")
        uncapped = run_workload(workload, IGuard, seeds=(1,))
        capped = run_workload(
            workload,
            lambda: IGuard(IGuardConfig(metadata_max_entries=4)),
            seeds=(1,),
        )
        full = set(uncapped.race_sites)
        assert set(capped.race_sites) <= full
        assert full  # the racy workload actually races

    def test_eviction_counter_matches_table_pressure(self):
        from repro.core.metadata import MetadataTable

        table = MetadataTable(max_entries=2)
        for granule in range(5):
            table.lookup_granule(granule)
        assert len(table) == 2
        assert table.evictions == 3
        # Re-touching a resident granule neither grows nor evicts.
        table.lookup_granule(4)
        assert table.evictions == 3


class TestValidateSchemaErrors:
    def _main(self, *argv):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "validate_schema",
            os.path.join(
                os.path.dirname(__file__), "..", "benchmarks",
                "validate_schema.py",
            ),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main(list(argv))

    def test_missing_instance_is_structured_error(self, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text('{"type": "object"}')
        rc = self._main(str(schema), str(tmp_path / "nope.json"))
        err = capsys.readouterr().err
        assert rc == 2
        assert "ERROR: cannot read instance" in err
        assert "Traceback" not in err

    def test_unparseable_schema_is_structured_error(self, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text("{not json")
        instance = tmp_path / "instance.json"
        instance.write_text("{}")
        rc = self._main(str(schema), str(instance))
        err = capsys.readouterr().err
        assert rc == 2
        assert "is not valid JSON" in err
