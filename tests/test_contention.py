"""Tests for the metadata-contention model (section 6.5)."""

from repro.core.contention import ContentionModel, ContentionParams


def model(backoff=True, window_warps=4):
    return ContentionModel(
        num_threads=64, concurrent_warps=window_warps, dynamic_backoff=backoff
    )


class TestContentionModel:
    def test_first_access_free(self):
        m = model()
        assert m.on_metadata_access(granule=1, batch=0, warp_id=0) == 0.0

    def test_single_thread_spin_free(self):
        # A lone thread re-acquiring an uncontended metadata lock pays
        # nothing: contention needs a *second warp*.
        m = model()
        total = sum(
            m.on_metadata_access(granule=1, batch=b, warp_id=0)
            for b in range(8)
        )
        assert total == 0.0
        assert m.serialized_cycles == 0.0

    def test_cross_warp_contention_costs(self):
        m = model()
        m.on_metadata_access(1, batch=0, warp_id=0)
        cost = m.on_metadata_access(1, batch=1, warp_id=1)
        assert cost > 0

    def test_distinct_granules_independent(self):
        m = model()
        m.on_metadata_access(1, batch=0, warp_id=0)
        assert m.on_metadata_access(2, batch=1, warp_id=1) == 0.0

    def test_window_expiry_resets(self):
        m = model(window_warps=2)  # window = 2 batches
        m.on_metadata_access(1, batch=0, warp_id=0)
        # Batch 10 is in a later window: the convoy has drained.
        assert m.on_metadata_access(1, batch=10, warp_id=1) == 0.0

    def test_quadratic_without_backoff(self):
        m = model(backoff=False)
        costs = [m.on_metadata_access(1, batch=0, warp_id=i % 3) for i in range(10)]
        # Linear per-access growth => quadratic total (the convoy).
        assert costs[-1] > costs[2] > 0

    def test_backoff_flattens_growth(self):
        with_bo = model(backoff=True)
        without = model(backoff=False)
        for i in range(32):
            with_bo.on_metadata_access(1, batch=0, warp_id=i % 4)
            without.on_metadata_access(1, batch=0, warp_id=i % 4)
        assert with_bo.serialized_cycles < without.serialized_cycles / 4

    def test_contended_access_count(self):
        m = model()
        for i in range(5):
            m.on_metadata_access(1, batch=0, warp_id=i)
        assert m.contended_accesses == 4  # first access never contends

    def test_params_scale_costs(self):
        cheap = ContentionModel(
            64, 4, dynamic_backoff=False,
            params=ContentionParams(retry_cost=1.0),
        )
        pricey = ContentionModel(
            64, 4, dynamic_backoff=False,
            params=ContentionParams(retry_cost=100.0),
        )
        for m in (cheap, pricey):
            m.on_metadata_access(1, 0, 0)
            m.on_metadata_access(1, 0, 1)
        assert pricey.serialized_cycles == 100 * cheap.serialized_cycles

    def test_window_at_least_one(self):
        m = ContentionModel(1, 0, dynamic_backoff=True)
        assert m.window == 1
