"""Tests for ThreadCtx and the generator-thread wrapper."""

import pytest

from repro.errors import KernelSourceError
from repro.gpu.ids import locate
from repro.gpu.instructions import Compute, Load, compute, load, store
from repro.gpu.kernel import KernelThread, ThreadCtx, ThreadStatus
from repro.gpu.memory import GlobalMemory


def make_ctx(tid=0, block_dim=8, grid_dim=2, warp_size=4):
    return ThreadCtx(locate(tid, block_dim, warp_size), block_dim, grid_dim, warp_size)


class TestThreadCtx:
    def test_builtin_variables(self):
        ctx = make_ctx(tid=13)
        assert ctx.tid == 13
        assert ctx.block_id == 1
        assert ctx.tid_in_block == 5
        assert ctx.warp_in_block == 1
        assert ctx.lane == 1
        assert ctx.warp_id == 3

    def test_num_threads(self):
        assert make_ctx().num_threads == 16

    def test_leaders(self):
        assert make_ctx(0).is_block_leader and make_ctx(0).is_grid_leader
        assert make_ctx(8).is_block_leader and not make_ctx(8).is_grid_leader
        assert not make_ctx(3).is_block_leader


class TestKernelThread:
    def test_priming_fetches_first_instruction(self):
        def kern(ctx):
            yield compute(1)

        t = KernelThread(kern, make_ctx(), ())
        assert isinstance(t.pending, Compute)
        assert t.status is ThreadStatus.READY

    def test_complete_advances(self):
        mem = GlobalMemory(1024 * 1024)
        arr = mem.alloc("a", 4, init=9)

        def kern(ctx, arr):
            v = yield load(arr, 0)
            yield store(arr, 1, v)

        t = KernelThread(kern, make_ctx(), (arr,))
        assert isinstance(t.pending, Load)
        t.complete(9)  # deliver the load result
        assert t.pending.value == 9  # flowed into the store
        t.complete(None)
        assert t.done

    def test_ip_has_function_and_line(self):
        def my_kern(ctx):
            yield compute(1)

        t = KernelThread(my_kern, make_ctx(), ())
        name, _, line = t.pending_ip.partition(":")
        assert name == "my_kern"
        assert line.isdigit()

    def test_ip_descends_into_yield_from(self):
        def helper():
            yield compute(1)

        def outer(ctx):
            yield from helper()

        t = KernelThread(outer, make_ctx(), ())
        assert t.pending_ip.startswith("helper:")

    def test_rejects_plain_function(self):
        with pytest.raises(KernelSourceError):
            KernelThread(lambda ctx: 42, make_ctx(), ())

    def test_rejects_non_instruction_yield(self):
        def kern(ctx):
            yield 123

        with pytest.raises(KernelSourceError):
            KernelThread(kern, make_ctx(), ())

    def test_empty_generator_is_done(self):
        def kern(ctx):
            if False:
                yield compute(1)

        t = KernelThread(kern, make_ctx(), ())
        assert t.done

    def test_barrier_parking(self):
        def kern(ctx):
            yield compute(1)
            yield compute(2)

        t = KernelThread(kern, make_ctx(), ())
        t.park_at_barrier(ThreadStatus.AT_BLOCK_BARRIER)
        assert t.status is ThreadStatus.AT_BLOCK_BARRIER
        assert t.live
        t.release_from_barrier()
        assert t.status is ThreadStatus.READY
        assert t.pending.cycles == 2

    def test_step_counter(self):
        def kern(ctx):
            yield compute(1)
            yield compute(1)

        t = KernelThread(kern, make_ctx(), ())
        t.complete(None)
        t.complete(None)
        assert t.steps == 2
        assert t.done
