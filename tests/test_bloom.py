"""Tests for the 16-bit lock-summary Bloom filter."""

from hypothesis import given, strategies as st

from repro.common.bloom import BloomFilter16
from repro.common.hashing import address_hash18


class TestBloomBasics:
    def test_empty(self):
        assert BloomFilter16().empty
        assert BloomFilter16().bits == 0

    def test_add_sets_bits(self):
        b = BloomFilter16()
        b.add(0x1000)
        assert not b.empty
        assert bin(b.bits).count("1") <= 2

    def test_might_contain_after_add(self):
        b = BloomFilter16()
        b.add(42)
        assert b.might_contain(42)

    def test_of_builds_from_iterable(self):
        b = BloomFilter16.of([1, 2, 3])
        for x in (1, 2, 3):
            assert b.might_contain(x)

    def test_intersects_requires_shared_bit(self):
        assert not BloomFilter16().intersects(BloomFilter16())

    def test_same_lock_always_intersects(self):
        a = BloomFilter16.of([77])
        b = BloomFilter16.of([77])
        assert a.intersects(b)

    def test_int_conversion(self):
        b = BloomFilter16.of([5])
        assert int(b) == b.bits

    def test_equality_with_int(self):
        b = BloomFilter16.of([5])
        assert b == b.bits

    def test_equality_with_bloom(self):
        assert BloomFilter16.of([5]) == BloomFilter16.of([5])

    def test_stays_16_bits(self):
        b = BloomFilter16()
        for x in range(100):
            b.add(x)
        assert b.bits <= 0xFFFF


class TestBloomForLocksets:
    """Properties race check R5 relies on."""

    def test_adjacent_locks_disjoint(self):
        # Locks in adjacent words (hash18 residues differing mod 8) must
        # have disjoint summaries, so per-thread locking races (Figure 9)
        # are not masked by phantom intersections.
        for i in range(7):
            a = BloomFilter16.of([address_hash18(0x1000 + 4 * i)])
            b = BloomFilter16.of([address_hash18(0x1000 + 4 * (i + 1))])
            assert not a.intersects(b), f"adjacent locks {i},{i+1} collide"

    @given(st.integers(0, 1 << 18), st.integers(0, 1 << 18))
    def test_no_false_negative(self, x, y):
        # A genuinely shared element always intersects: R5 cannot produce
        # a false positive from the Bloom encoding.
        a = BloomFilter16.of([x, y])
        b = BloomFilter16.of([x])
        assert a.intersects(b)

    @given(st.lists(st.integers(0, 1 << 18), min_size=1, max_size=3))
    def test_membership_no_false_negative(self, xs):
        b = BloomFilter16.of(xs)
        for x in xs:
            assert b.might_contain(x)

    @given(st.lists(st.integers(0, 1 << 18), max_size=3))
    def test_bits_monotone_under_union(self, xs):
        b = BloomFilter16()
        prev = 0
        for x in xs:
            b.add(x)
            assert b.bits & prev == prev  # bits are never cleared
            prev = b.bits
