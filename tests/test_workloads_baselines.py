"""Baseline detectors against the workloads: the Table 4/Figure 11 story."""

import pytest

from repro.baselines import Barracuda, ScoRD
from repro.core import IGuard
from repro.workloads import get_workload, racefree_workloads, run_workload


class TestBarracudaApplicability:
    def test_scor_suite_unsupported(self):
        # Scoped atomics abort Barracuda (it could not run ScoR at all).
        for name in ("matrix-mult", "reduction", "graph-color"):
            result = run_workload(get_workload(name), Barracuda, seeds=(1,))
            assert result.status == "unsupported", name

    def test_cg_suite_unsupported(self):
        for name in ("conjugGMB", "reduceMB", "warpAA", "grid_sync"):
            result = run_workload(get_workload(name), Barracuda, seeds=(1,))
            assert result.status == "unsupported", name

    def test_complex_binaries_unsupported(self):
        # "It cannot handle large, multi-file real-world GPU libraries."
        for name in ("louvain", "mis", "slabhash_test", "cuML_gsync"):
            result = run_workload(get_workload(name), Barracuda, seeds=(1,))
            assert result.status == "unsupported", name
            assert "PTX" in result.detail

    def test_interac_does_not_terminate(self):
        result = run_workload(get_workload("interac"), Barracuda, seeds=(1,))
        assert result.status == "timeout"
        assert result.races > 0  # some races found before giving up

    def test_supported_racy_workloads(self):
        # Barracuda runs hashtable / shocbfs / cub_gridbar and finds the
        # non-ITS races (Table 4's Barracuda column).
        for name, expected in (("hashtable", 2), ("shocbfs", 2), ("cub_gridbar", 1)):
            result = run_workload(get_workload(name), Barracuda, seeds=(1,))
            assert result.status == "ok", name
            assert result.races == expected, name


class TestBarracudaNoFalsePositives:
    @pytest.mark.parametrize(
        "workload",
        [w for w in racefree_workloads() if w.suite in ("CUB", "Rodinia")],
        ids=lambda w: w.name,
    )
    def test_silent_where_it_runs(self, workload):
        result = run_workload(workload, Barracuda, seeds=(1,))
        assert result.status == "ok"
        assert result.races == 0, result.race_sites


class TestOverheadRelationships:
    def test_iguard_much_cheaper_than_barracuda(self):
        # Figure 11(b)'s essence on a representative workload.
        w = get_workload("d_scan")
        ig = run_workload(w, IGuard, seeds=(1,))
        bar = run_workload(w, Barracuda, seeds=(1,))
        assert bar.overhead > 2 * ig.overhead

    def test_scord_is_hardware_cheap(self):
        w = get_workload("b_reduce")
        sc = run_workload(w, ScoRD, seeds=(1,))
        ig = run_workload(w, IGuard, seeds=(1,))
        assert sc.overhead < ig.overhead
        assert sc.overhead < 1.5  # "Low" in Table 1

    def test_iguard_overhead_moderate(self):
        # The paper's average is 5.1x; any healthy workload should be
        # within the same order of magnitude.
        w = get_workload("hotspot")
        ig = run_workload(w, IGuard, seeds=(1,))
        assert 1.0 < ig.overhead < 20.0


class TestScoRDDetection:
    def test_scord_misses_its_races(self):
        # iGUARD found 5 new ITS races in ScoRD's own suite: ScoRD mode
        # must report fewer races on `reduction` (its 3 ITS sites).
        w = get_workload("reduction")
        ig = run_workload(w, IGuard)
        sc = run_workload(w, ScoRD)
        assert ig.races == 7
        assert sc.races == ig.races - 3
        assert "ITS" not in sc.race_types

    def test_scord_catches_scoped_races(self):
        w = get_workload("1dconv")
        sc = run_workload(w, ScoRD)
        assert sc.races == 1
        assert sc.race_types == {"AS"}

    def test_scord_misses_lockset_races(self):
        w = get_workload("uts")  # 2 IL + 4 AS
        sc = run_workload(w, ScoRD)
        assert "IL" not in sc.race_types
        assert sc.races == 4
