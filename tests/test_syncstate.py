"""Tests for the live synchronization metadata (counters + lock tables)."""

from repro.core.syncstate import SyncMetadata
from repro.gpu.instructions import Scope


class TestCounters:
    def test_initial_zero(self):
        sm = SyncMetadata()
        assert sm.blk_bar(0) == 0
        assert sm.warp_bar(0) == 0
        assert sm.dev_fence((0, 0)) == 0
        assert sm.blk_fence((0, 0)) == 0

    def test_syncthreads_bumps_block(self):
        sm = SyncMetadata()
        sm.on_syncthreads(2)
        assert sm.blk_bar(2) == 1
        assert sm.blk_bar(0) == 0  # other blocks untouched

    def test_syncwarp_bumps_warp(self):
        sm = SyncMetadata()
        sm.on_syncwarp(5)
        assert sm.warp_bar(5) == 1

    def test_device_fence_bumps_device_counter_only(self):
        sm = SyncMetadata()
        sm.on_fence((1, 2), Scope.DEVICE)
        assert sm.dev_fence((1, 2)) == 1
        assert sm.blk_fence((1, 2)) == 0

    def test_block_fence_bumps_block_counter_only(self):
        sm = SyncMetadata()
        sm.on_fence((1, 2), Scope.BLOCK)
        assert sm.blk_fence((1, 2)) == 1
        assert sm.dev_fence((1, 2)) == 0

    def test_fences_are_per_thread(self):
        # "We keep threadfence counters per thread since CUDA defines the
        # semantics of threadfences for each thread" (6.1).
        sm = SyncMetadata()
        sm.on_fence((0, 0), Scope.DEVICE)
        assert sm.dev_fence((0, 1)) == 0

    def test_blk_bar_wraps_at_8_bits(self):
        sm = SyncMetadata()
        for _ in range(256):
            sm.on_syncthreads(0)
        assert sm.blk_bar(0) == 0  # exactly 256 syncthreads alias zero

    def test_warp_bar_wraps_at_6_bits(self):
        sm = SyncMetadata()
        for _ in range(64):
            sm.on_syncwarp(0)
        assert sm.warp_bar(0) == 0

    def test_fence_wraps_at_6_bits(self):
        sm = SyncMetadata()
        for _ in range(64):
            sm.on_fence((0, 0), Scope.DEVICE)
        assert sm.dev_fence((0, 0)) == 0


class TestLockTableSelection:
    def test_warp_table_by_default(self):
        sm = SyncMetadata()
        table = sm.lock_table_for(3, (3, 1))
        assert table is sm.warp_lock_table(3)

    def test_thread_table_after_isthread(self):
        sm = SyncMetadata()
        sm.warp_lock_table(3).is_thread = True
        table = sm.lock_table_for(3, (3, 1))
        assert table is sm.thread_lock_table((3, 1))

    def test_thread_tables_are_distinct(self):
        sm = SyncMetadata()
        sm.warp_lock_table(0).is_thread = True
        assert sm.lock_table_for(0, (0, 0)) is not sm.lock_table_for(0, (0, 1))

    def test_tables_cached(self):
        sm = SyncMetadata()
        assert sm.warp_lock_table(1) is sm.warp_lock_table(1)
        assert sm.thread_lock_table((1, 1)) is sm.thread_lock_table((1, 1))

    def test_footprint_accounting(self):
        sm = SyncMetadata()
        sm.on_syncthreads(0)
        sm.warp_lock_table(0)
        assert sm.approximate_bytes() > 0
