"""Tests for Device launch mechanics, timing, and tool dispatch."""

import pytest

from repro.errors import LaunchError
from repro.gpu.arch import TEST_GPU
from repro.gpu.costs import CostParams, WallClock, effective_parallelism
from repro.gpu.device import Device
from repro.gpu.events import AccessKind, SyncKind
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    compute,
    fence_block,
    fence_device,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.instrument.nvbit import Tool
from repro.instrument.timing import Category, TimingBreakdown

from tests.conftest import fresh_device


class Recorder(Tool):
    """Captures every event for assertions."""

    name = "recorder"

    def __init__(self):
        self.memory = []
        self.sync = []
        self.launches = []
        self.allocs = []
        self.ended = 0

    def on_alloc(self, allocation):
        self.allocs.append(allocation.name)

    def on_launch_begin(self, launch):
        self.launches.append(launch)

    def on_memory(self, event, launch):
        self.memory.append(event)

    def on_sync(self, event, launch):
        self.sync.append(event)

    def on_launch_end(self, launch):
        self.ended += 1


class TestLaunchValidation:
    def test_block_too_large(self):
        dev = fresh_device()
        with pytest.raises(LaunchError):
            dev.launch(lambda ctx: iter(()), 1, TEST_GPU.max_threads_per_block + 1)

    def test_grid_zero(self):
        dev = fresh_device()
        with pytest.raises(LaunchError):
            dev.launch(lambda ctx: iter(()), 0, 4)

    def test_run_result_fields(self):
        dev = fresh_device()
        data = dev.alloc("data", 8)

        def kern(ctx, data):
            yield store(data, ctx.tid, 1)

        run = dev.launch(kern, 2, 4, args=(data,))
        assert run.kernel_name == "kern"
        assert run.grid_dim == 2 and run.block_dim == 4
        assert run.num_threads == 8
        assert run.instructions == 8
        assert run.batches >= 1
        assert not run.timed_out
        assert run.overhead == pytest.approx(1.0)

    def test_runs_accumulate(self):
        dev = fresh_device()
        data = dev.alloc("data", 4)

        def kern(ctx, data):
            yield store(data, ctx.tid, 1)

        dev.launch(kern, 1, 4, args=(data,))
        dev.launch(kern, 1, 4, args=(data,))
        assert len(dev.runs) == 2


class TestToolDispatch:
    def test_memory_events_delivered(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        data = dev.alloc("data", 8)

        def kern(ctx, data):
            v = yield load(data, ctx.tid)
            yield store(data, ctx.tid, v + 1)
            yield atomic_add(data, ctx.tid, 1)

        dev.launch(kern, 1, 4, args=(data,))
        kinds = [e.kind for e in rec.memory]
        assert kinds.count(AccessKind.LOAD) == 4
        assert kinds.count(AccessKind.STORE) == 4
        assert kinds.count(AccessKind.ATOMIC) == 4

    def test_event_values(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        data = dev.alloc("data", 1, init=10)

        def kern(ctx, data):
            if ctx.tid == 0:
                old = yield atomic_add(data, 0, 5)
                yield store(data, 0, old)

        dev.launch(kern, 1, 4, args=(data,))
        atomic = next(e for e in rec.memory if e.kind is AccessKind.ATOMIC)
        assert atomic.value_loaded == 10
        assert atomic.value_stored == 5

    def test_sync_events_delivered(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        data = dev.alloc("data", 8)

        def kern(ctx, data):
            yield fence_device()
            yield fence_block()
            yield syncthreads()
            yield syncwarp()

        dev.launch(kern, 1, 8, args=(data,))
        kinds = [e.kind for e in rec.sync]
        assert kinds.count(SyncKind.FENCE) == 16  # 8 threads x 2 fences
        assert kinds.count(SyncKind.SYNCTHREADS) == 1  # once per completion
        assert kinds.count(SyncKind.SYNCWARP) == 2  # one per warp

    def test_fence_event_scope(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        dev.alloc("data", 1)

        def kern(ctx):
            yield fence_block()

        dev.launch(kern, 1, 1)
        assert rec.sync[0].scope is Scope.BLOCK

    def test_alloc_hook(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        dev.alloc("x", 4)
        dev.alloc("y", 4)
        assert rec.allocs == ["x", "y"]

    def test_launch_lifecycle(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        dev.alloc("d", 1)

        def kern(ctx):
            yield compute(1)

        dev.launch(kern, 1, 2)
        assert len(rec.launches) == 1
        assert rec.ended == 1
        launch = rec.launches[0]
        assert launch.warps_per_block == 1
        assert launch.num_threads == 2

    def test_ip_points_into_kernel(self):
        dev = fresh_device()
        rec = dev.add_tool(Recorder())
        data = dev.alloc("data", 2)

        def my_kernel(ctx, data):
            yield store(data, 0, 1)

        dev.launch(my_kernel, 1, 1, args=(data,))
        assert rec.memory[0].ip.startswith("my_kernel:")


class TestCostModel:
    def test_fence_ratio_is_21x(self):
        costs = CostParams()
        assert costs.fence_device == 21 * costs.fence_block

    def test_cost_of_each_instruction(self):
        from repro.gpu.instructions import Atomic, AtomicOp, Compute, Fence, Load, Store
        costs = CostParams()
        assert costs.cost_of(Load(0)) == costs.load
        assert costs.cost_of(Store(0, 1)) == costs.store
        assert costs.cost_of(Atomic(AtomicOp.ADD, 0, 1, Scope.BLOCK)) == costs.atomic_block
        assert costs.cost_of(Atomic(AtomicOp.ADD, 0, 1, Scope.DEVICE)) == costs.atomic_device
        assert costs.cost_of(Fence(Scope.BLOCK)) == costs.fence_block
        assert costs.cost_of(Fence(Scope.DEVICE)) == costs.fence_device
        assert costs.cost_of(Compute(5)) == 5

    def test_wall_clock_parallel_division(self):
        wc = WallClock(parallelism=4)
        wc.add_parallel(100)
        wc.add_serial(10)
        assert wc.time == 35.0

    def test_effective_parallelism(self):
        assert effective_parallelism(10, 100) == 10
        assert effective_parallelism(1000, 100) == 100
        assert effective_parallelism(0, 100) == 1

    def test_native_time_scales_with_work(self):
        def kern_light(ctx, data):
            yield store(data, ctx.tid, 1)

        def kern_heavy(ctx, data):
            yield store(data, ctx.tid, 1)
            yield compute(100)

        def native(kern):
            dev = fresh_device()
            data = dev.alloc("data", 4)
            return dev.launch(kern, 1, 4, args=(data,)).native_time

        assert native(kern_heavy) > native(kern_light)


class TestTimingBreakdown:
    def test_charge_and_time(self):
        t = TimingBreakdown(parallelism=2)
        t.charge(Category.NATIVE, 100)
        t.charge(Category.DETECTION, 10, serial=True)
        assert t.time_of(Category.NATIVE) == 50
        assert t.time_of(Category.DETECTION) == 10
        assert t.total_time == 60
        assert t.overhead == pytest.approx(60 / 50)

    def test_fractions_sum_to_one(self):
        t = TimingBreakdown(parallelism=1)
        t.charge(Category.NATIVE, 10)
        t.charge(Category.NVBIT, 30, serial=True)
        fractions = t.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_native_overhead_is_one(self):
        assert TimingBreakdown().overhead == 1.0

    def test_snapshot_keys(self):
        snap = TimingBreakdown().snapshot()
        assert set(snap) == {
            "native", "nvbit", "setup", "instrumentation", "detection", "misc"
        }
