"""The section 6.7 accessor-history ablation.

The paper: "We empirically confirmed this by tracking the last 2, 4, and
8 accessors to a memory location in the metadata instead of only the last
accessor (default in iGUARD).  Tracking longer access history did not
find any new races for any of the programs we evaluated."
"""

import pytest

from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG
from repro.errors import ConfigError
from repro.gpu.instructions import atomic_add, atomic_load, load, store, syncthreads
from repro.workloads import racefree_workloads, racy_workloads, run_workload

from tests.conftest import detect


class TestConfig:
    def test_default_is_one(self):
        assert DEFAULT_CONFIG.accessor_history == 1

    def test_with_history(self):
        assert DEFAULT_CONFIG.with_history(4).accessor_history == 4

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.with_history(0)


class TestNoNewRaces:
    """The paper's finding, reproduced per workload."""

    @pytest.mark.parametrize("depth", [2, 4, 8])
    @pytest.mark.parametrize(
        "name", ["reduction", "graph-color", "hashtable", "grid_sync"]
    )
    def test_racy_counts_unchanged(self, name, depth):
        workload = next(w for w in racy_workloads() if w.name == name)
        base = run_workload(workload, lambda: IGuard(), seeds=(1,))
        deep = run_workload(
            workload, lambda: IGuard(DEFAULT_CONFIG.with_history(depth)),
            seeds=(1,),
        )
        assert deep.races == base.races == workload.expected_races

    @pytest.mark.parametrize(
        "name", ["b_scan", "hotspot", "d_sel_if", "warpAA"]
    )
    def test_racefree_still_silent(self, name):
        workload = next(w for w in racefree_workloads() if w.name == name)
        deep = run_workload(
            workload, lambda: IGuard(DEFAULT_CONFIG.with_history(8)),
            seeds=(1,),
        )
        assert deep.races == 0, deep.race_sites


class TestHistoryCanSeeOlderAccessors:
    """A synthetic case where only deeper history catches the race: a
    writer synchronizes with the *latest* reader but not an earlier one
    (the false-negative window the paper deems unlikely in practice)."""

    @staticmethod
    def _kernel(ctx, data, flags, out):
        # t1 reads data[0]; then t2 reads it and publishes a fence; then
        # t0 writes it.  t0 is fence-ordered against t2 (the latest
        # reader) but races with t1's older read.
        if ctx.tid == 1:
            v = yield load(data, 0)
            yield store(out, 1, v)
            yield atomic_add(flags, 0, 1)
        if ctx.tid == 2:
            while (yield atomic_load(flags, 0)) == 0:
                pass
            v = yield load(data, 0)
            yield store(out, 2, v)
            from repro.gpu.instructions import fence_device
            yield fence_device()
            yield atomic_add(flags, 1, 1)
        if ctx.tid == 0:
            while (yield atomic_load(flags, 1)) == 0:
                pass
            yield store(data, 0, 99)

    def test_depth_one_misses(self):
        det, _ = detect(
            self._kernel, 1, 16, {"data": 1, "flags": 2, "out": 4}, seed=1
        )
        assert det.race_count == 0  # t1's read was overwritten in metadata

    def test_depth_four_catches(self):
        det, _ = detect(
            self._kernel, 1, 16, {"data": 1, "flags": 2, "out": 4}, seed=1,
            config=DEFAULT_CONFIG.with_history(4),
        )
        assert det.race_count == 1
