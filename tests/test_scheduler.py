"""Tests for the lockstep and ITS warp schedulers."""

import pytest

from repro.errors import DeadlockError, KernelSourceError, LaunchError
from repro.gpu.arch import TEST_GPU, PRE_VOLTA
from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_add,
    atomic_load,
    compute,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.gpu.scheduler import SchedulerKind

from tests.conftest import fresh_device


class TestBasicExecution:
    def test_all_threads_run(self):
        dev = fresh_device()
        out = dev.alloc("out", 16, init=0)

        def kern(ctx, out):
            yield store(out, ctx.tid, ctx.tid + 1)

        dev.launch(kern, 2, 8, args=(out,))
        assert out.to_list() == list(range(1, 17))

    def test_load_returns_value(self):
        dev = fresh_device()
        data = dev.alloc("data", 4, init=5)
        out = dev.alloc("out", 4, init=0)

        def kern(ctx, data, out):
            v = yield load(data, ctx.tid)
            yield store(out, ctx.tid, v * 2)

        dev.launch(kern, 1, 4, args=(data, out))
        assert out.to_list() == [10, 10, 10, 10]

    def test_atomic_returns_old_value(self):
        dev = fresh_device()
        counter = dev.alloc("c", 1, init=0)
        olds = dev.alloc("olds", 8, init=-1)

        def kern(ctx, counter, olds):
            old = yield atomic_add(counter, 0, 1)
            yield store(olds, ctx.tid, old)

        dev.launch(kern, 1, 8, args=(counter, olds))
        assert counter.read(0) == 8
        assert sorted(olds.to_list()) == list(range(8))

    def test_non_generator_kernel_rejected(self):
        dev = fresh_device()

        def not_a_kernel(ctx):
            return 42

        with pytest.raises(KernelSourceError):
            dev.launch(not_a_kernel, 1, 4)

    def test_bad_yield_rejected(self):
        dev = fresh_device()

        def kern(ctx):
            yield "not an instruction"

        with pytest.raises(KernelSourceError):
            dev.launch(kern, 1, 4)

    def test_empty_thread_ok(self):
        dev = fresh_device()
        out = dev.alloc("out", 1, init=0)

        def kern(ctx, out):
            if ctx.tid == 0:
                yield store(out, 0, 1)
            # other threads yield nothing and finish immediately

        dev.launch(kern, 1, 8, args=(out,))
        assert out.read(0) == 1


class TestBarriers:
    def test_syncthreads_orders_block(self):
        dev = fresh_device()
        data = dev.alloc("data", 8, init=0)
        out = dev.alloc("out", 8, init=0)

        def kern(ctx, data, out):
            yield store(data, ctx.tid, ctx.tid * 10)
            yield syncthreads()
            v = yield load(data, (ctx.tid + 1) % ctx.block_dim)
            yield store(out, ctx.tid, v)

        for seed in range(5):
            dev = fresh_device()
            data = dev.alloc("data", 8, init=0)
            out = dev.alloc("out", 8, init=0)
            dev.launch(kern, 1, 8, args=(data, out), seed=seed)
            assert out.to_list() == [(i + 1) % 8 * 10 for i in range(8)]

    def test_syncwarp_orders_warp(self):
        for seed in range(5):
            dev = fresh_device()
            data = dev.alloc("data", 4, init=0)
            out = dev.alloc("out", 4, init=0)

            def kern(ctx, data, out):
                yield store(data, ctx.lane, ctx.lane + 100)
                yield syncwarp()
                v = yield load(data, (ctx.lane + 1) % ctx.warp_size)
                yield store(out, ctx.lane, v)

            dev.launch(kern, 1, 4, args=(data, out), seed=seed)
            assert out.to_list() == [(i + 1) % 4 + 100 for i in range(4)]

    def test_barrier_with_finished_siblings(self):
        # Threads that exit before the barrier must not deadlock it.
        dev = fresh_device()
        out = dev.alloc("out", 8, init=0)

        def kern(ctx, out):
            if ctx.tid >= 4:
                return
                yield  # pragma: no cover - makes this a generator
            yield store(out, ctx.tid, 1)
            yield syncthreads()
            yield store(out, ctx.tid + 4, 2)

        dev.launch(kern, 1, 8, args=(out,))
        assert out.to_list() == [1, 1, 1, 1, 2, 2, 2, 2]

    def test_divergent_barrier_deadlocks(self):
        dev = fresh_device()

        def kern(ctx):
            if ctx.tid == 1:
                # Lane 1 waits at a *warp* barrier while its warp siblings
                # wait at the *block* barrier: neither can ever complete.
                yield syncwarp()
            else:
                yield syncthreads()

        with pytest.raises(DeadlockError):
            dev.launch(kern, 1, 4)

    def test_multi_block_barriers_independent(self):
        dev = fresh_device()
        out = dev.alloc("out", 16, init=0)

        def kern(ctx, out):
            yield syncthreads()
            yield store(out, ctx.tid, ctx.block_id)
            yield syncthreads()

        dev.launch(kern, 2, 8, args=(out,))
        assert out.to_list() == [0] * 8 + [1] * 8


class TestSchedulingModes:
    def test_its_seed_determinism(self):
        def kern(ctx, out):
            yield atomic_add(out, 0, ctx.tid)
            yield compute(2)
            yield atomic_add(out, 1, 1)

        def batches(seed):
            dev = fresh_device()
            out = dev.alloc("out", 2, init=0)
            run = dev.launch(kern, 2, 8, args=(out,), seed=seed)
            return run.batches

        assert batches(3) == batches(3)

    def test_different_seeds_change_interleaving(self):
        # The observable interleaving (atomic arrival order) varies by seed.
        def kern(ctx, order, cursor):
            slot = yield atomic_add(cursor, 0, 1)
            yield store(order, slot, ctx.tid)

        orders = set()
        for seed in range(8):
            dev = fresh_device()
            order = dev.alloc("order", 16, init=0)
            cursor = dev.alloc("cursor", 1, init=0)
            dev.launch(kern, 2, 8, args=(order, cursor), seed=seed)
            orders.add(tuple(order.to_list()))
        assert len(orders) > 1

    def test_lockstep_mode_runs(self):
        dev = Device(PRE_VOLTA)
        out = dev.alloc("out", 32, init=0)

        def kern(ctx, out):
            yield store(out, ctx.tid, 1)

        run = dev.launch(kern, 1, 32, args=(out,))
        assert out.to_list() == [1] * 32

    def test_its_rejected_without_support(self):
        dev = Device(PRE_VOLTA)
        with pytest.raises(LaunchError):
            dev.launch(lambda ctx: iter(()), 1, 4, scheduler=SchedulerKind.ITS)

    def test_spin_on_flag_makes_progress(self):
        # Producer/consumer through an atomic flag must terminate under ITS.
        dev = fresh_device()
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 1, init=0)

        def kern(ctx, flag, out):
            if ctx.tid == 0:
                yield compute(5)
                yield atomic_add(flag, 0, 1)
            elif ctx.tid == 1:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                yield store(out, 0, 1)

        run = dev.launch(kern, 1, 8, args=(flag, out), seed=2)
        assert out.read(0) == 1
        assert not run.timed_out

    def test_timeout_flag(self):
        dev = fresh_device()
        flag = dev.alloc("flag", 1, init=0)

        def kern(ctx, flag):
            while (yield atomic_load(flag, 0)) == 0:
                pass  # livelock: nobody ever sets the flag

        run = dev.launch(kern, 1, 4, args=(flag,), max_batches=200)
        assert run.timed_out


class TestConvergenceGroups:
    def test_divergent_branches_have_singleton_masks(self):
        dev = fresh_device()
        masks = dev.alloc("masks", 2, init=0)
        recorded = []

        class Spy:
            name = "spy"
            def attach(self, d): pass
            def on_alloc(self, a): pass
            def on_launch_begin(self, l): pass
            def on_launch_end(self, l): pass
            def on_timeout(self, l): pass
            def on_sync(self, e, l): pass
            def on_memory(self, e, l):
                recorded.append((e.where.lane, tuple(sorted(e.active_mask))))

        dev.tools.append(Spy())

        def kern(ctx, masks):
            if ctx.lane == 0:
                yield store(masks, 0, 1)
            elif ctx.lane == 1:
                yield store(masks, 1, 1)

        dev.launch(kern, 1, 4, args=(masks,), seed=1)
        by_lane = dict(recorded)
        assert by_lane[0] == (0,)
        assert by_lane[1] == (1,)

    def test_convergent_threads_share_mask(self):
        dev = fresh_device()
        data = dev.alloc("data", 4, init=0)
        masks = []

        class Spy:
            name = "spy"
            def attach(self, d): pass
            def on_alloc(self, a): pass
            def on_launch_begin(self, l): pass
            def on_launch_end(self, l): pass
            def on_timeout(self, l): pass
            def on_sync(self, e, l): pass
            def on_memory(self, e, l):
                masks.append(len(e.active_mask))

        dev.tools.append(Spy())

        def kern(ctx, data):
            yield store(data, ctx.lane, 1)

        # split_probability=0: the full warp executes as one batch.
        dev.launch(kern, 1, 4, args=(data,), seed=1, split_probability=0.0)
        assert all(m == 4 for m in masks)
