"""The sharded detection core: routing, merging, and mode equivalence.

The sharding contract is byte-identical detection output for any shard
count, in every mode: live in-process cores behind one adapter, the
batched drain driver, and the process-pool replica merge.  These tests
pin the contract against real workloads for all five backends, plus the
deterministic-merge regression (shuffled records re-sort to the exact
serial report order) and the router/config units.
"""

import random
from dataclasses import replace

import pytest

from repro.baselines import Barracuda, CURD, FastTrack, ScoRD
from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG
from repro.core.report import RaceRecord, RaceType, merge_race_records
from repro.core.sharding import (
    BatchShardedIGuard,
    default_shards,
    replay_trace_sharded,
    replay_workload_sharded,
    shard_of,
)
from repro.engine.fanout import run_workload_fanout
from repro.engine.replay import capture_workload, replay_workload
from repro.errors import ConfigError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import HOT
from repro.workloads.registry import get_workload
from repro.workloads.runner import DetectorFactory, run_workload


# ---------------------------------------------------------------------------
# Router and config units
# ---------------------------------------------------------------------------


class TestShardRouter:
    def test_single_shard_is_always_zero(self):
        assert all(shard_of(key, 1) == 0 for key in range(0, 4096, 7))

    def test_stays_in_range_and_is_deterministic(self):
        for shards in (2, 3, 4, 7, 16):
            for key in (0, 1, 63, 64, 1 << 20, (1 << 63) + 5):
                shard = shard_of(key, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(key, shards)

    def test_strided_sweep_spreads_across_shards(self):
        # Bare modulus aliases strided address sweeps (granule += 1 per
        # thread) onto few shards; the multiplicative mix must not.
        for stride in (1, 2, 8, 64):
            hit = {shard_of(key * stride, 4) for key in range(256)}
            assert len(hit) == 4, stride

    def test_default_shards_env(self, monkeypatch):
        monkeypatch.delenv("IGUARD_SHARDS", raising=False)
        assert default_shards() == 1
        monkeypatch.setenv("IGUARD_SHARDS", "6")
        assert default_shards() == 6
        monkeypatch.setenv("IGUARD_SHARDS", "0")
        assert default_shards() == 1
        monkeypatch.setenv("IGUARD_SHARDS", "banana")
        assert default_shards() == 1


class TestShardConfigRestrictions:
    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError):
            IGuard(shards=0)

    def test_metadata_cap_incompatible_with_sharding(self):
        capped = replace(DEFAULT_CONFIG, metadata_max_entries=64)
        with pytest.raises(ConfigError):
            IGuard(config=capped, shards=2)
        # A single shard is the serial detector; the cap stays legal.
        IGuard(config=capped, shards=1)

    def test_history_ablation_allowed(self):
        # Accessor history partitions cleanly by granule.
        IGuard(config=DEFAULT_CONFIG.with_history(4), shards=4)


# ---------------------------------------------------------------------------
# Deterministic merge (satellite S2)
# ---------------------------------------------------------------------------


def _record(ip, race_type, launch_index, batch, warp_id, lane, granule):
    return RaceRecord(
        race_type=race_type,
        kernel="kern",
        ip=ip,
        access="store",
        address=granule * 8,
        location=f"data[{granule}]",
        warp_id=warp_id,
        lane=lane,
        block_id=0,
        prev_warp_id=0,
        prev_lane=0,
        launch_index=launch_index,
        batch=batch,
        granule=granule,
    )


class TestDeterministicMerge:
    def _canonical_records(self):
        # Serial emission order: launches, then batches, then lanes of the
        # batch's warp, then granule/ip within one lane's coalesced run.
        return [
            _record("k:1", RaceType.ITS, 0, 3, 0, 0, 10),
            _record("k:2", RaceType.ATOMIC_SCOPE, 0, 3, 0, 1, 11),
            _record("k:1", RaceType.INTRA_BLOCK, 0, 5, 1, 0, 10),
            _record("k:3", RaceType.INTER_BLOCK, 1, 0, 0, 0, 12),
            _record("k:3", RaceType.IMPROPER_LOCKING, 1, 0, 0, 2, 12),
            _record("k:4", RaceType.INTER_BLOCK, 1, 2, 2, 0, 13),
        ]

    def test_shuffled_records_resort_to_serial_order(self):
        canonical = self._canonical_records()
        serial = merge_race_records([canonical], capacity=1 << 20)

        rng = random.Random(42)
        for _ in range(25):
            shuffled = list(canonical)
            rng.shuffle(shuffled)
            # Split into ragged shard-local lists, as the pool mode would.
            cut = rng.randint(0, len(shuffled))
            merged = merge_race_records(
                [shuffled[:cut], shuffled[cut:]], capacity=1 << 20
            )
            assert merged.records() == serial.records()
            assert merged.sites() == serial.sites()

    def test_first_record_wins_site_type(self):
        # Two records at one ip with different types: the serially-first
        # one (lower batch) defines the site's type even when shards
        # deliver them in the opposite order.
        late = _record("k:9", RaceType.INTER_BLOCK, 0, 7, 0, 0, 20)
        early = _record("k:9", RaceType.ITS, 0, 2, 0, 0, 21)
        merged = merge_race_records([[late], [early]], capacity=1 << 20)
        assert dict(merged.sites())["k:9"] is RaceType.ITS

    def test_stable_sort_preserves_same_key_multiplicity(self):
        twin = _record("k:5", RaceType.INTER_BLOCK, 0, 1, 0, 0, 30)
        merged = merge_race_records([[twin, twin]], capacity=1 << 20)
        assert len(merged.records()) == 2


# ---------------------------------------------------------------------------
# Live in-process sharding: byte-identical results, every backend
# ---------------------------------------------------------------------------


_BACKENDS = [IGuard, Barracuda, ScoRD, CURD, FastTrack]


def _fingerprint(result):
    return (
        result.status,
        result.races,
        result.race_sites,
        result.overhead,
        result.total_time,
        tuple(sorted(result.breakdown.items())),
    )


class TestLiveShardingIdentity:
    @pytest.mark.parametrize("cls", _BACKENDS, ids=lambda c: c.name)
    def test_all_backends_identical_at_three_shards(self, cls):
        workload = get_workload("matrix-mult")
        serial = run_workload(workload, cls)
        sharded = run_workload(workload, DetectorFactory(cls, shards=3))
        assert _fingerprint(sharded) == _fingerprint(serial)

    def test_iguard_identical_on_racy_workload(self):
        workload = get_workload("reduction")
        serial = run_workload(workload, IGuard)
        for shards in (2, 5):
            sharded = run_workload(
                workload, DetectorFactory(IGuard, shards=shards)
            )
            assert _fingerprint(sharded) == _fingerprint(serial)

    def test_fanout_threads_shards_through(self):
        workload = get_workload("matrix-mult")
        solo = run_workload(workload, IGuard)
        fanned = run_workload_fanout(
            workload, [IGuard, Barracuda], shards=2
        )
        assert _fingerprint(fanned[0]) == _fingerprint(solo)

    def test_shard_metrics_populated(self):
        was_enabled = obs_metrics.metrics_enabled()
        try:
            obs_metrics.set_enabled(True)
            routed_before = HOT.shard_routed.value
            broadcast_before = HOT.shard_broadcast.value
            run_workload(
                get_workload("reduction"),
                DetectorFactory(IGuard, shards=4),
            )
            assert HOT.shard_routed.value > routed_before
            assert HOT.shard_broadcast.value > broadcast_before
            assert HOT.shard_imbalance.value >= 1.0
        finally:
            obs_metrics.set_enabled(was_enabled)

    def test_detector_factory_is_picklable(self):
        import pickle

        factory = DetectorFactory(IGuard, shards=4)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.name == "iGUARD"
        assert clone().shards == 4


# ---------------------------------------------------------------------------
# Batched drain driver and process-pool replica modes
# ---------------------------------------------------------------------------


class TestBatchedAndPoolModes:
    @pytest.mark.parametrize("name", ["matrix-mult", "reduction"])
    def test_batched_replay_sites_match_serial(self, name):
        workload = get_workload(name)
        trace = capture_workload(workload)
        serial = replay_workload(trace, IGuard, workload.name)
        sites = {}
        for _seed, events in trace.runs():
            outcome = replay_trace_sharded(list(events), shards=4)
            for ip, race_type in outcome.tool.races.sites():
                sites.setdefault(ip, str(race_type))
        assert sites == dict(serial.race_sites)

    def test_batched_stats_match_serial(self):
        workload = get_workload("matrix-mult")
        trace = capture_workload(workload)
        events = list(next(iter(trace.runs()))[1])

        from repro.engine.replay import replay

        serial_tool = IGuard()
        replay(events, tools=[serial_tool])
        outcome = replay_trace_sharded(events, shards=4)
        serial_checked = sum(
            s.accesses_checked + s.accesses_coalesced
            for s in serial_tool.stats
        )
        assert outcome.events == serial_checked

    def test_batched_single_shard_matches_too(self):
        workload = get_workload("reduction")
        trace = capture_workload(workload)
        serial = replay_workload(trace, IGuard, workload.name)
        sites = {}
        for _seed, events in trace.runs():
            outcome = replay_trace_sharded(list(events), shards=1)
            for ip, race_type in outcome.tool.races.sites():
                sites.setdefault(ip, str(race_type))
        assert sites == dict(serial.race_sites)

    @pytest.mark.parametrize("name", ["matrix-mult", "reduction"])
    def test_pool_mode_sites_match_serial(self, name):
        workload = get_workload(name)
        trace = capture_workload(workload)
        serial = replay_workload(trace, IGuard, workload.name)
        # Inline mode runs the replicas in-process: same merge machinery
        # as the pool, no worker processes to slow the suite down.
        out = replay_workload_sharded(trace, shards=4, mode="inline")
        assert out["status"] == serial.status
        assert out["sites"] == dict(serial.race_sites)

    def test_batched_tool_is_an_iguard(self):
        tool = BatchShardedIGuard(DEFAULT_CONFIG, shards=4)
        assert isinstance(tool, IGuard)
        assert len(tool.cores) == 4

    def test_unknown_pool_mode_rejected(self):
        workload = get_workload("matrix-mult")
        trace = capture_workload(workload)
        with pytest.raises(ValueError):
            replay_workload_sharded(trace, shards=2, mode="threads")
