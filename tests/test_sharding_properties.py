"""Property-based sharding equivalence over generated programs.

The sharded engine's contract, stated adversarially: for *randomly
generated* kernels — mixing race-free phases with deliberately racy
ones — and arbitrary scheduler seeds, a detector split across any
number of shards produces the identical race report the serial detector
does: same records, same order, same sites, same per-type counts.
Shard counts include a prime (7) so granule routing never lines up with
warp width or array strides by accident.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baselines import FastTrack
from repro.core import IGuard
from repro.gpu.instructions import (
    atomic_add,
    atomic_load,
    compute,
    load,
    store,
    syncthreads,
    syncwarp,
)

from tests.conftest import fresh_device

#: Phases mix correct-by-construction patterns with racy ones, so the
#: equivalence is exercised on non-empty reports too.
_PHASE = st.sampled_from(
    ["private_rmw", "read_shared", "atomic_counter", "warp_exchange",
     "block_exchange", "shared_store", "neighbor_write", "compute"]
)
_PROGRAM = st.lists(_PHASE, min_size=1, max_size=5)
_SHARDS = st.sampled_from([1, 2, 4, 7])


def _build_kernel(phases):
    def kern(ctx, private, shared, counter, exchange):
        for phase in phases:
            if phase == "private_rmw":
                v = yield load(private, ctx.tid)
                yield store(private, ctx.tid, v + 1)
            elif phase == "read_shared":
                v = yield load(shared, 0)
                yield store(private, ctx.tid, v)
            elif phase == "atomic_counter":
                yield atomic_add(counter, 0, 1)
                v = yield atomic_load(counter, 0)
                yield store(private, ctx.tid, v)
            elif phase == "warp_exchange":
                base = ctx.warp_id * ctx.warp_size
                yield store(exchange, base + ctx.lane, ctx.tid)
                yield syncwarp()
                v = yield load(exchange, base + (ctx.lane + 1) % ctx.warp_size)
                yield store(private, ctx.tid, v)
                yield syncwarp()
            elif phase == "shared_store":
                # Every thread stores the same cell: write-write races.
                yield store(shared, 0, ctx.tid)
            elif phase == "neighbor_write":
                # Unsynchronized neighbour write: read-write races across
                # warps and blocks.
                yield store(exchange, ctx.tid, ctx.tid)
                v = yield load(exchange, (ctx.tid + 1) % 16)
                yield store(private, ctx.tid, v)
            elif phase == "block_exchange":
                yield store(exchange, ctx.tid, ctx.tid)
                yield syncthreads()
                nbr = ctx.block_id * ctx.block_dim + (
                    (ctx.tid_in_block + 1) % ctx.block_dim
                )
                v = yield load(exchange, nbr)
                yield store(private, ctx.tid, v)
                yield syncthreads()
            elif phase == "compute":
                yield compute(3)
        yield syncthreads()

    return kern


def _run(phases, seed, factory):
    dev = fresh_device()
    det = dev.add_tool(factory())
    private = dev.alloc("private", 16, init=0)
    shared = dev.alloc("shared", 1, init=5)
    counter = dev.alloc("counter", 1, init=0)
    exchange = dev.alloc("exchange", 16, init=0)
    dev.launch(_build_kernel(phases), 2, 8,
               args=(private, shared, counter, exchange), seed=seed)
    return det


def _report(det):
    records = det.races.records()
    return (
        tuple(records),
        tuple(det.races.sites()),
        Counter(str(r.race_type) for r in records),
    )


class TestShardedEqualsSerial:
    @given(phases=_PROGRAM, seed=st.integers(0, 10_000), shards=_SHARDS)
    @settings(max_examples=30, deadline=None)
    def test_iguard_report_invariant_under_sharding(
        self, phases, seed, shards
    ):
        serial = _run(phases, seed, IGuard)
        sharded = _run(phases, seed, lambda: IGuard(shards=shards))
        assert _report(sharded) == _report(serial), (phases, seed, shards)

    @given(phases=_PROGRAM, seed=st.integers(0, 10_000), shards=_SHARDS)
    @settings(max_examples=15, deadline=None)
    def test_fasttrack_report_invariant_under_sharding(
        self, phases, seed, shards
    ):
        serial = _run(phases, seed, FastTrack)
        sharded = _run(phases, seed, lambda: FastTrack(shards=shards))
        assert _report(sharded) == _report(serial), (phases, seed, shards)
