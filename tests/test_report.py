"""Tests for race records, the report buffer, and site deduplication."""

from repro.core.report import RaceBuffer, RaceLog, RaceRecord, RaceType


def record(ip="kern:10", race_type=RaceType.INTER_BLOCK, address=0x1000):
    return RaceRecord(
        race_type=race_type, kernel="kern", ip=ip, access="load",
        address=address, location="data[0]", warp_id=1, lane=2, block_id=0,
        prev_warp_id=3, prev_lane=4,
    )


class TestRaceRecord:
    def test_describe_mentions_everything(self):
        text = record().describe()
        for fragment in ("DR", "load", "kern:10", "data[0]", "w1.t2", "w3.t4"):
            assert fragment in text

    def test_type_str(self):
        assert str(RaceType.IMPROPER_LOCKING) == "IL"
        assert str(RaceType.ATOMIC_SCOPE) == "AS"
        assert str(RaceType.ITS) == "ITS"
        assert str(RaceType.INTRA_BLOCK) == "BR"
        assert str(RaceType.INTER_BLOCK) == "DR"


class TestRaceBuffer:
    def test_push_accumulates(self):
        buf = RaceBuffer(capacity=10)
        buf.push(record())
        assert len(buf.pending) == 1
        assert buf.flushes == 0

    def test_auto_flush_when_full(self):
        # The 1 MB buffer is "sent to the CPU ... when full".
        buf = RaceBuffer(capacity=3)
        for i in range(3):
            buf.push(record(ip=f"kern:{i}"))
        assert buf.flushes == 1
        assert len(buf.pending) == 0
        assert len(buf.reported) == 3

    def test_manual_flush(self):
        buf = RaceBuffer(capacity=10)
        buf.push(record())
        buf.flush()
        assert buf.reported and not buf.pending

    def test_flush_empty_is_noop(self):
        buf = RaceBuffer(capacity=10)
        buf.flush()
        assert buf.flushes == 0

    def test_all_records(self):
        buf = RaceBuffer(capacity=10)
        buf.push(record(ip="a"))
        buf.flush()
        buf.push(record(ip="b"))
        assert len(buf.all_records()) == 2


class TestRaceLog:
    def test_new_site_reported_once(self):
        log = RaceLog(capacity=100)
        assert log.report(record(ip="kern:1"))
        assert not log.report(record(ip="kern:1", address=0x2000))
        assert log.num_sites == 1

    def test_distinct_sites_counted(self):
        log = RaceLog(capacity=100)
        log.report(record(ip="kern:1"))
        log.report(record(ip="kern:2", race_type=RaceType.ITS))
        assert log.num_sites == 2
        assert log.types() == {RaceType.INTER_BLOCK, RaceType.ITS}

    def test_sites_sorted(self):
        log = RaceLog(capacity=100)
        log.report(record(ip="kern:9"))
        log.report(record(ip="kern:1"))
        assert [ip for ip, _ in log.sites()] == ["kern:1", "kern:9"]

    def test_records_keeps_dynamics(self):
        log = RaceLog(capacity=100)
        for _ in range(5):
            log.report(record(ip="same"))
        assert log.num_sites == 1
        assert len(log.records()) == 5

    def test_capacity_matches_paper_budget(self):
        # 1 MiB buffer / 64-byte records = 16384 entries.
        from repro.core.config import DEFAULT_CONFIG
        assert DEFAULT_CONFIG.race_buffer_capacity == 16384


class TestDroppedRecords:
    def test_unbounded_by_default(self):
        buf = RaceBuffer(capacity=2)
        for i in range(10):
            assert buf.push(record(ip=f"kern:{i}"))
        assert buf.dropped == 0
        assert len(buf.all_records()) == 10

    def test_push_beyond_cap_counts_dropped(self):
        buf = RaceBuffer(capacity=2, max_records=3)
        assert buf.push(record(ip="kern:1"))
        assert buf.push(record(ip="kern:2"))  # triggers an auto-flush
        assert buf.push(record(ip="kern:3"))
        assert not buf.push(record(ip="kern:4"))
        assert not buf.push(record(ip="kern:5"))
        assert buf.dropped == 2
        assert len(buf.all_records()) == 3

    def test_dropped_metric_increments(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.set_enabled(True)
        try:
            obs_metrics.get_registry().reset()
            buf = RaceBuffer(capacity=8, max_records=1)
            buf.push(record(ip="kern:1"))
            buf.push(record(ip="kern:2"))
            hot = obs_metrics.HOT
            assert hot.races_dropped.snapshot()["value"] == 1
        finally:
            obs_metrics.set_enabled(False)
            obs_metrics.get_registry().reset()

    def test_log_surfaces_dropped(self):
        log = RaceLog(capacity=8, max_records=2)
        for i in range(5):
            log.report(record(ip=f"kern:{i}"))
        assert log.dropped == 3
        assert len(log.records()) == 2

    def test_dropped_record_still_registers_site_and_type(self):
        # Site dedup (the paper's static race count) must not depend on
        # buffer sizing: a record dropped at the cap still counts.
        log = RaceLog(capacity=8, max_records=1)
        assert log.report(record(ip="kern:1"))
        assert log.report(
            record(ip="kern:2", race_type=RaceType.IMPROPER_LOCKING)
        )
        assert log.num_sites == 2
        assert log.sites() == [
            ("kern:1", RaceType.INTER_BLOCK),
            ("kern:2", RaceType.IMPROPER_LOCKING),
        ]
        assert log.types() == {
            RaceType.INTER_BLOCK, RaceType.IMPROPER_LOCKING,
        }
        assert log.dropped == 1
