"""Tests for race records, the report buffer, and site deduplication."""

from repro.core.report import RaceBuffer, RaceLog, RaceRecord, RaceType


def record(ip="kern:10", race_type=RaceType.INTER_BLOCK, address=0x1000):
    return RaceRecord(
        race_type=race_type, kernel="kern", ip=ip, access="load",
        address=address, location="data[0]", warp_id=1, lane=2, block_id=0,
        prev_warp_id=3, prev_lane=4,
    )


class TestRaceRecord:
    def test_describe_mentions_everything(self):
        text = record().describe()
        for fragment in ("DR", "load", "kern:10", "data[0]", "w1.t2", "w3.t4"):
            assert fragment in text

    def test_type_str(self):
        assert str(RaceType.IMPROPER_LOCKING) == "IL"
        assert str(RaceType.ATOMIC_SCOPE) == "AS"
        assert str(RaceType.ITS) == "ITS"
        assert str(RaceType.INTRA_BLOCK) == "BR"
        assert str(RaceType.INTER_BLOCK) == "DR"


class TestRaceBuffer:
    def test_push_accumulates(self):
        buf = RaceBuffer(capacity=10)
        buf.push(record())
        assert len(buf.pending) == 1
        assert buf.flushes == 0

    def test_auto_flush_when_full(self):
        # The 1 MB buffer is "sent to the CPU ... when full".
        buf = RaceBuffer(capacity=3)
        for i in range(3):
            buf.push(record(ip=f"kern:{i}"))
        assert buf.flushes == 1
        assert len(buf.pending) == 0
        assert len(buf.reported) == 3

    def test_manual_flush(self):
        buf = RaceBuffer(capacity=10)
        buf.push(record())
        buf.flush()
        assert buf.reported and not buf.pending

    def test_flush_empty_is_noop(self):
        buf = RaceBuffer(capacity=10)
        buf.flush()
        assert buf.flushes == 0

    def test_all_records(self):
        buf = RaceBuffer(capacity=10)
        buf.push(record(ip="a"))
        buf.flush()
        buf.push(record(ip="b"))
        assert len(buf.all_records()) == 2


class TestRaceLog:
    def test_new_site_reported_once(self):
        log = RaceLog(capacity=100)
        assert log.report(record(ip="kern:1"))
        assert not log.report(record(ip="kern:1", address=0x2000))
        assert log.num_sites == 1

    def test_distinct_sites_counted(self):
        log = RaceLog(capacity=100)
        log.report(record(ip="kern:1"))
        log.report(record(ip="kern:2", race_type=RaceType.ITS))
        assert log.num_sites == 2
        assert log.types() == {RaceType.INTER_BLOCK, RaceType.ITS}

    def test_sites_sorted(self):
        log = RaceLog(capacity=100)
        log.report(record(ip="kern:9"))
        log.report(record(ip="kern:1"))
        assert [ip for ip, _ in log.sites()] == ["kern:1", "kern:9"]

    def test_records_keeps_dynamics(self):
        log = RaceLog(capacity=100)
        for _ in range(5):
            log.report(record(ip="same"))
        assert log.num_sites == 1
        assert len(log.records()) == 5

    def test_capacity_matches_paper_budget(self):
        # 1 MiB buffer / 64-byte records = 16384 entries.
        from repro.core.config import DEFAULT_CONFIG
        assert DEFAULT_CONFIG.race_buffer_capacity == 16384
