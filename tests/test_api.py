"""Tests for the top-level public API and the exception hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_device_and_detector_construct(self):
        device = repro.Device()
        detector = device.add_tool(repro.IGuard())
        assert detector.device is device
        assert device.config is repro.TITAN_RTX

    def test_registry_reexported(self):
        assert len(repro.REGISTRY) == 43
        assert repro.get_workload("reduction").suite == "ScoR"

    def test_docstring_example_works(self):
        # The README / package-docstring snippet, end to end.
        from repro.gpu import load, store

        device = repro.Device()
        detector = device.add_tool(repro.IGuard())
        data = device.alloc("data", 64, init=0)

        def kernel(ctx, data):
            yield store(data, ctx.tid, ctx.tid)
            v = yield load(data, (ctx.tid + 1) % ctx.num_threads)
            yield store(data, ctx.tid, v)

        device.launch(kernel, grid_dim=2, block_dim=32, args=(data,))
        assert detector.race_count > 0

    def test_race_type_enum_exported(self):
        assert str(repro.RaceType.ATOMIC_SCOPE) == "AS"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.LaunchError,
            errors.MemoryError_,
            errors.OutOfMemoryError,
            errors.InvalidAddressError,
            errors.DeadlockError,
            errors.TimeoutError_,
            errors.UnsupportedFeatureError,
            errors.KernelSourceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_oom_is_memory_error(self):
        assert issubclass(errors.OutOfMemoryError, errors.MemoryError_)

    def test_catchable_as_family(self):
        device = repro.Device(repro.GPUConfig(memory_bytes=1024 * 1024))
        with pytest.raises(errors.ReproError):
            device.alloc("huge", 10**9)
