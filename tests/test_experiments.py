"""Tests for the experiment harness: every table/figure regenerates with
the paper's qualitative shape."""

import pytest

from repro.experiments import (
    figure11,
    figure12,
    figure13,
    figure14,
    motivation,
    table1,
    table4,
    table5,
)


@pytest.fixture(scope="module")
def table1_matrix():
    return table1.run()


@pytest.fixture(scope="module")
def table4_rows():
    return table4.run()


@pytest.fixture(scope="module")
def figure12_rows():
    return figure12.run()


class TestTable1:
    def test_iguard_supports_everything(self, table1_matrix):
        row = table1_matrix["iGUARD"]
        for feature in table1.FEATURES:
            assert row[feature] == "Yes"

    def test_barracuda_row_matches_paper(self, table1_matrix):
        row = table1_matrix["Barracuda"]
        assert row["Sc. fence"] == "Yes"
        assert row["Sc. atomic"] == "No"
        assert row["ITS"] == "No"
        assert row["CG"] == "No"

    def test_scord_row_matches_paper(self, table1_matrix):
        row = table1_matrix["ScoRD"]
        assert row["Sc. fence"] == "Yes"
        assert row["Sc. atomic"] == "Yes"
        assert row["ITS"] == "No"
        assert row["CG"] == "No"
        assert row["Extra H/W"] == "Yes"

    def test_only_iguard_detects_cg(self, table1_matrix):
        cg_capable = [d for d, row in table1_matrix.items() if row["CG"] == "Yes"]
        assert cg_capable == ["iGUARD"]

    def test_render_contains_all_detectors(self, table1_matrix):
        text = table1.render(table1_matrix)
        for name in ("Barracuda", "CURD", "Simulee", "HaccRG", "ScoRD", "iGUARD"):
            assert name in text


class TestTable4:
    def test_total_is_57(self, table4_rows):
        assert table4.total_races(table4_rows) == 57

    def test_22_applications(self, table4_rows):
        assert len(table4_rows) == 22

    def test_barracuda_mostly_unsupported(self, table4_rows):
        unsupported = [r for r in table4_rows if r.barracuda == "Unsupported"]
        assert len(unsupported) >= 15

    def test_interac_marked_dnt(self, table4_rows):
        row = next(r for r in table4_rows if r.name == "interac")
        assert row.barracuda.endswith("*")

    def test_cg_rows_labeled(self, table4_rows):
        row = next(r for r in table4_rows if r.name == "conjugGMB")
        assert row.types.startswith("CG (")

    def test_render(self, table4_rows):
        text = table4.render(table4_rows)
        assert "57" in text
        assert "grid_sync" in text


class TestTable5:
    def test_no_false_positives(self):
        rows = table5.run(extra_seeds=())
        assert table5.false_positives(rows) == []
        assert len(rows) == 21
        assert "No false positives." in table5.render(rows)


class TestFigure12:
    def test_eight_workloads(self, figure12_rows):
        assert len(figure12_rows) == 8

    def test_optimizations_help_everywhere(self, figure12_rows):
        for row in figure12_rows:
            assert row.improvement >= 1.0, row.name

    def test_mean_improvement_substantial(self, figure12_rows):
        # Paper: 7x average for this subset.
        assert figure12.mean_improvement(figure12_rows) > 3.0

    def test_conjuggmb_blowup(self, figure12_rows):
        # Paper: 706x -> 6x.  The shape to hold: an enormous unoptimized
        # overhead collapsing to a small one.
        row = next(r for r in figure12_rows if r.name == "conjugGMB")
        assert row.baseline > 100
        assert row.optimized < 20
        assert row.improvement > 25

    def test_accuracy_unchanged_by_optimizations(self):
        # "these optimizations did not affect the accuracy of race
        # detection in any way."
        from repro.core import IGuard
        from repro.core.config import DEFAULT_CONFIG
        from repro.workloads import get_workload, run_workload
        w = get_workload("conjugGMB")
        opt = run_workload(w, lambda: IGuard(), seeds=(1,))
        base = run_workload(
            w, lambda: IGuard(DEFAULT_CONFIG.without_optimizations()), seeds=(1,)
        )
        assert opt.races == base.races == w.expected_races

    def test_render(self, figure12_rows):
        assert "conjugGMB" in figure12.render(figure12_rows)


class TestFigure13:
    def test_every_suite_present(self):
        rows = figure13.run()
        suites = {r.suite for r in rows}
        assert "ScoR" in suites and "Rodinia" in suites and "CUB" in suites

    def test_fractions_sum_to_one(self):
        rows = figure13.run()
        for row in rows:
            assert sum(row.fractions.values()) == pytest.approx(1.0, abs=1e-6)

    def test_nvbit_is_key_contributor(self):
        # "NVBit itself is often a key contributor."
        rows = figure13.run()
        big = [r for r in rows if r.fractions.get("nvbit", 0) > 0.2]
        assert len(big) >= len(rows) // 2


class TestFigure14:
    @pytest.fixture(scope="class")
    def points(self):
        return figure14.run()

    def test_barracuda_oom_past_8gb(self, points):
        by_gb = {p.footprint_gb: p for p in points}
        assert by_gb[4].barracuda is not None
        assert by_gb[8].barracuda is None
        assert by_gb[16].barracuda is None

    def test_iguard_never_fails(self, points):
        assert all(p.iguard is not None for p in points)

    def test_iguard_flat_then_growing(self, points):
        by_gb = {p.footprint_gb: p for p in points}
        assert by_gb[1].iguard == pytest.approx(by_gb[2].iguard, rel=0.3)
        assert by_gb[8].iguard > 3 * by_gb[4].iguard
        assert by_gb[16].iguard > by_gb[8].iguard

    def test_faults_appear_only_under_pressure(self, points):
        by_gb = {p.footprint_gb: p for p in points}
        assert by_gb[1].iguard_faults == 0
        assert by_gb[16].iguard_faults > 0

    def test_render(self, points):
        text = figure14.render(points)
        assert "Out of memory" in text


class TestMotivation:
    def test_fence_ratio_near_21x(self):
        result = motivation.run()
        assert 15.0 < result.ratio < 21.5

    def test_render(self):
        assert "21x" in motivation.render(motivation.run())


class TestFigure11:
    @pytest.fixture(scope="class")
    def panels(self):
        return figure11.run()

    def test_two_panels(self, panels):
        assert set(panels) == {"a", "b"}

    def test_panel_sizes(self, panels):
        assert len(panels["a"].bars) == 22
        assert len(panels["b"].bars) == 21

    def test_iguard_average_near_paper(self, panels):
        # Paper: 5.1x over all 42 workloads; 4.2x over the race-free set.
        all_bars = panels["a"].bars + panels["b"].bars
        overall = sum(b.iguard for b in all_bars) / len(all_bars)
        assert 3.0 < overall < 9.0

    def test_barracuda_average_much_higher(self, panels):
        # Paper: 61x on the race-free panel where Barracuda runs.
        mean_b = panels["b"].barracuda_mean()
        assert mean_b is not None
        assert mean_b > 25.0

    def test_speedup_over_barracuda(self, panels):
        # Paper headline: race detection sped up ~15x over Barracuda.
        speedup = panels["b"].speedup_over_barracuda()
        assert speedup is not None and speedup > 5.0

    def test_barracuda_unsupported_on_racy_panel(self, panels):
        unsupported = [
            b for b in panels["a"].bars if b.barracuda_status == "unsupported"
        ]
        assert len(unsupported) >= 15

    def test_render(self, panels):
        text = figure11.render(panels)
        assert "(a) applications with races" in text
        assert "Unsupported" in text
