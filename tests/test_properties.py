"""Property-based tests over generated programs and schedules.

The strongest soundness statement the suite makes: for *randomly
generated, correct-by-construction* kernels — arbitrary interleavings of
private accesses, read-only shared loads, barrier-separated phases, and
device-atomic updates — iGUARD reports nothing, on arbitrary scheduler
seeds.  And a direction-pinned seeded race is reported under every seed.
"""

from hypothesis import given, settings, strategies as st

from repro.core import IGuard
from repro.gpu.instructions import (
    atomic_add,
    atomic_load,
    compute,
    load,
    store,
    syncthreads,
    syncwarp,
)

from tests.conftest import fresh_device

# One program = a sequence of phases; each phase is race-free by
# construction and phases are separated by block barriers.
_PHASE = st.sampled_from(
    ["private_rmw", "read_shared", "atomic_counter", "warp_exchange",
     "block_exchange", "compute"]
)
_PROGRAM = st.lists(_PHASE, min_size=1, max_size=6)


def _build_kernel(phases):
    def kern(ctx, private, shared, counter, exchange):
        for phase in phases:
            if phase == "private_rmw":
                v = yield load(private, ctx.tid)
                yield store(private, ctx.tid, v + 1)
            elif phase == "read_shared":
                v = yield load(shared, 0)
                yield store(private, ctx.tid, v)
            elif phase == "atomic_counter":
                yield atomic_add(counter, 0, 1)
                v = yield atomic_load(counter, 0)
                yield store(private, ctx.tid, v)
            elif phase == "warp_exchange":
                base = ctx.warp_id * ctx.warp_size
                yield store(exchange, base + ctx.lane, ctx.tid)
                yield syncwarp()
                v = yield load(exchange, base + (ctx.lane + 1) % ctx.warp_size)
                yield store(private, ctx.tid, v)
                yield syncwarp()
            elif phase == "block_exchange":
                yield store(exchange, ctx.tid, ctx.tid)
                yield syncthreads()
                nbr = ctx.block_id * ctx.block_dim + (
                    (ctx.tid_in_block + 1) % ctx.block_dim
                )
                v = yield load(exchange, nbr)
                yield store(private, ctx.tid, v)
                yield syncthreads()
            elif phase == "compute":
                yield compute(3)
        # A final barrier keeps phase boundaries uniform.
        yield syncthreads()

    return kern


def _run(phases, seed):
    dev = fresh_device()
    det = dev.add_tool(IGuard())
    private = dev.alloc("private", 16, init=0)
    shared = dev.alloc("shared", 1, init=5)
    counter = dev.alloc("counter", 1, init=0)
    exchange = dev.alloc("exchange", 16, init=0)
    dev.launch(_build_kernel(phases), 2, 8,
               args=(private, shared, counter, exchange), seed=seed)
    return det


class TestNoFalsePositives:
    @given(phases=_PROGRAM, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_correct_programs_stay_silent(self, phases, seed):
        det = _run(phases, seed)
        assert det.race_count == 0, (phases, seed, det.races.sites())

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_all_phases_together(self, seed):
        phases = ["private_rmw", "read_shared", "atomic_counter",
                  "warp_exchange", "block_exchange", "compute"]
        det = _run(phases, seed)
        assert det.race_count == 0


class TestNoFalseNegatives:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pinned_race_found_under_every_seed(self, seed):
        def kern(ctx, data, flag, out):
            if ctx.block_id == 0 and ctx.tid_in_block == 0:
                yield store(data, 0, 1)
                yield atomic_add(flag, 0, 1)
            if ctx.block_id == 1 and ctx.tid_in_block == 0:
                while (yield atomic_load(flag, 0)) == 0:
                    pass
                v = yield load(data, 0)
                yield store(out, 0, v)

        dev = fresh_device()
        det = dev.add_tool(IGuard())
        data = dev.alloc("data", 1, init=0)
        flag = dev.alloc("flag", 1, init=0)
        out = dev.alloc("out", 1, init=0)
        dev.launch(kern, 2, 8, args=(data, flag, out), seed=seed)
        assert det.race_count == 1


class TestDeterminism:
    @given(phases=_PROGRAM, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_outcome(self, phases, seed):
        a = _run(phases, seed)
        b = _run(phases, seed)
        assert a.races.sites() == b.races.sites()
        assert a.stats[0].accesses_checked == b.stats[0].accesses_checked
