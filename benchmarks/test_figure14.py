"""Benchmark: regenerate Figure 14 (memory-footprint scaling)."""

from repro.experiments import figure14

from benchmarks.conftest import run_once


def test_figure14(benchmark):
    points = run_once(benchmark, figure14.run)
    print()
    print(figure14.render(points))
    by_gb = {p.footprint_gb: p for p in points}
    # Barracuda: pinned buffers fail outright past 8 GB.
    assert by_gb[4].barracuda is not None
    assert by_gb[8].barracuda is None and by_gb[16].barracuda is None
    # iGUARD: graceful degradation — always runs, overhead grows once
    # app + 4x metadata exceed the 24 GB device.
    assert all(p.iguard is not None for p in points)
    assert by_gb[16].iguard > by_gb[8].iguard > by_gb[4].iguard
