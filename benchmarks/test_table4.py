"""Benchmark: regenerate Table 4 (races detected per application)."""

from repro.experiments import table4

from benchmarks.conftest import run_once


def test_table4(benchmark):
    rows = run_once(benchmark, table4.run)
    print()
    print(table4.render(rows))
    # Paper headline: 57 unique races, no suite missing.
    assert table4.total_races(rows) == 57
    assert len(rows) == 22
    # Barracuda's column: unsupported nearly everywhere, DNT on interac.
    assert sum(r.barracuda == "Unsupported" for r in rows) >= 15
    assert next(r for r in rows if r.name == "interac").barracuda.endswith("*")
