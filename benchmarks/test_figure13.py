"""Benchmark: regenerate Figure 13 (runtime breakdown per suite)."""

from repro.experiments import figure13

from benchmarks.conftest import run_once


def test_figure13(benchmark):
    rows = run_once(benchmark, figure13.run)
    print()
    print(figure13.render(rows))
    assert len(rows) >= 10  # every suite represented
    for row in rows:
        assert abs(sum(row.fractions.values()) - 1.0) < 1e-6
    # Paper observation: NVBit is often a key contributor.
    assert sum(r.fractions.get("nvbit", 0) > 0.2 for r in rows) >= len(rows) // 2
