"""Benchmark: regenerate Table 1 (detector feature matrix)."""

from repro.experiments import table1

from benchmarks.conftest import run_once


def test_table1(benchmark):
    matrix = run_once(benchmark, table1.run)
    print()
    print(table1.render(matrix))
    # Paper shape: only iGUARD supports all four feature rows.
    assert all(matrix["iGUARD"][f] == "Yes" for f in table1.FEATURES)
    assert matrix["Barracuda"]["Sc. atomic"] == "No"
    assert matrix["ScoRD"]["ITS"] == "No"
