"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's tables or figures through
the :mod:`repro.experiments` harness, checks its headline shape, and
prints the paper-style rendering (visible with ``pytest -s`` or in the
captured output block).  Full experiments are measured with a single
round — they are end-to-end reproductions, not microbenchmarks.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with one round, one iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
