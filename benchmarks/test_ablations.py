"""Design-choice ablations called out in DESIGN.md / paper section 6.7.

- **Accessor history**: the paper tracked the last 2/4/8 accessors and
  found no new races; history depth only costs metadata and time.
- **Detection granularity**: coarser granules (8/16 bytes) shrink the
  shadow table; the seeded races must still be found.
- **ScoRD cost mode**: the hardware-assist configuration should be close
  to native.
"""

import pytest

from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.baselines import ScoRD
from repro.workloads import get_workload, run_workload

from benchmarks.conftest import run_once


@pytest.mark.parametrize("depth", [1, 2, 4, 8])
def test_accessor_history_depth(benchmark, depth):
    workload = get_workload("reduction")
    config = DEFAULT_CONFIG.with_history(depth)

    def run():
        return run_workload(workload, lambda: IGuard(config), seeds=(1,))

    result = run_once(benchmark, run)
    # Section 6.7: longer history finds no new races.
    assert result.races == workload.expected_races


@pytest.mark.parametrize("granularity", [4, 8, 16])
def test_detection_granularity(benchmark, granularity):
    # Why the paper shadows 4-byte granules: coarser granules alias
    # *adjacent variables* into one metadata entry, so unrelated accesses
    # look like conflicts and spurious "false sharing" races appear.  The
    # seeded race must always be found; only the default granularity is
    # also free of metadata false sharing.
    workload = get_workload("grid_sync")
    config = IGuardConfig(granularity_bytes=granularity)

    def run():
        return run_workload(workload, lambda: IGuard(config), seeds=(1,))

    result = run_once(benchmark, run)
    assert result.races >= workload.expected_races
    if granularity == 4:
        assert result.races == workload.expected_races
    else:
        assert result.races > workload.expected_races  # false sharing


def test_scord_hardware_cost_mode(benchmark):
    workload = get_workload("b_scan")

    def run():
        return run_workload(workload, ScoRD, seeds=(1,))

    result = run_once(benchmark, run)
    assert result.overhead < 1.5  # Table 1's "Low"
