"""Validate an observability artifact against its checked-in JSON schema.

A deliberately small, stdlib-only validator covering the subset of JSON
Schema the artifacts in ``benchmarks/schemas/`` use: ``type`` (including
type lists), ``const``, ``enum``, ``required``, ``properties``,
``additionalProperties`` (schema form), ``items``, and ``oneOf``.  CI
runs it so a refactor cannot silently change the
``--metrics-out``/``--trace-out``/``--telemetry-out`` formats that
downstream tooling (Perfetto, Prometheus, dashboards) consumes.

Usage::

    python benchmarks/validate_schema.py benchmarks/schemas/trace.schema.json trace.json

An instance path ending in ``.jsonl`` is treated as JSON Lines: every
line is parsed and validated independently against the schema, with
errors prefixed by the 1-based line number (how ``telemetry.jsonl`` is
checked).

Importable too: :func:`validate` returns a list of human-readable error
strings (empty = valid).
"""

from __future__ import annotations

import json
import sys
from typing import Any, List

#: JSON Schema scalar type name -> accepted Python types.
_TYPES = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "null": (type(None),),
}


def _type_ok(value: Any, name: str) -> bool:
    accepted = _TYPES[name]
    if isinstance(value, bool) and name in ("integer", "number"):
        return False  # bool is an int subclass but not a JSON number
    return isinstance(value, accepted)


def validate(instance: Any, schema: dict, path: str = "$") -> List[str]:
    """Check ``instance`` against ``schema``; return error strings."""
    errors: List[str] = []

    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, n) for n in names):
            errors.append(
                f"{path}: expected type {'/'.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below would only cascade

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']!r}")

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            elif isinstance(schema.get("additionalProperties"), dict):
                errors.extend(
                    validate(
                        value, schema["additionalProperties"], f"{path}.{key}"
                    )
                )

    if isinstance(instance, list) and isinstance(schema.get("items"), dict):
        for index, value in enumerate(instance):
            errors.extend(validate(value, schema["items"], f"{path}[{index}]"))

    alternatives = schema.get("oneOf")
    if isinstance(alternatives, list) and alternatives:
        attempts = [
            validate(instance, alternative, path)
            for alternative in alternatives
        ]
        if not any(not attempt for attempt in attempts):
            # No branch matched: report the closest one (fewest errors)
            # rather than every branch's noise.
            closest = min(attempts, key=len)
            errors.append(
                f"{path}: matches none of the {len(alternatives)} oneOf "
                f"alternatives; closest branch failed with:"
            )
            errors.extend(f"  {error}" for error in closest)

    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 2:
        print(
            "usage: validate_schema.py <schema.json> <instance.json>",
            file=sys.stderr,
        )
        return 2
    schema_path, instance_path = argv

    def _read_json(path: str, role: str) -> Any:
        # A missing artifact is an operator error, not a crash: report
        # what could not be read and which role it played, no traceback.
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError as exc:
            print(f"ERROR: cannot read {role} {path!r}: {exc.strerror or exc}",
                  file=sys.stderr)
        except json.JSONDecodeError as exc:
            print(f"ERROR: {role} {path!r} is not valid JSON: {exc}",
                  file=sys.stderr)
        except UnicodeDecodeError as exc:
            print(f"ERROR: {role} {path!r} is not UTF-8 text: {exc}",
                  file=sys.stderr)
        return None

    schema = _read_json(schema_path, "schema")
    if schema is None:
        return 2
    if instance_path.endswith(".jsonl"):
        errors = []
        try:
            with open(instance_path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            print(
                f"ERROR: cannot read instance {instance_path!r}: "
                f"{exc.strerror or exc}",
                file=sys.stderr,
            )
            return 2
        if not lines:
            errors.append("line 1: empty JSONL file (expected a header)")
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                errors.append(f"line {lineno}: blank line")
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not valid JSON: {exc}")
                continue
            errors.extend(
                f"line {lineno}: {error}"
                for error in validate(record, schema)
            )
    else:
        instance = _read_json(instance_path, "instance")
        if instance is None:
            return 2
        errors = validate(instance, schema)
    if errors:
        for error in errors:
            print(f"INVALID {instance_path}: {error}", file=sys.stderr)
        return 1
    print(f"{instance_path} conforms to {schema.get('title', schema_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
