"""Benchmark: regenerate Table 5 (race-free applications, no false positives)."""

from repro.experiments import table5

from benchmarks.conftest import run_once


def test_table5(benchmark):
    rows = run_once(benchmark, table5.run)
    print()
    print(table5.render(rows))
    assert len(rows) == 21
    assert table5.false_positives(rows) == []
