"""Benchmark: regenerate Figure 12 (contention-optimization ablation)."""

from repro.experiments import figure12

from benchmarks.conftest import run_once


def test_figure12(benchmark):
    rows = run_once(benchmark, figure12.run)
    print()
    print(figure12.render(rows))
    # Paper shape: ~7x average improvement; conjugGMB collapses from an
    # extreme baseline (706x -> 6x there).
    assert figure12.mean_improvement(rows) > 3.0
    conjug = next(r for r in rows if r.name == "conjugGMB")
    assert conjug.baseline > 100 and conjug.optimized < 20
