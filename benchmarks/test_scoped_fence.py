"""Benchmark: the section 1 motivation microbenchmark (scoped fence cost)."""

from repro.experiments import motivation

from benchmarks.conftest import run_once


def test_scoped_fence_ratio(benchmark):
    result = run_once(benchmark, motivation.run)
    print()
    print(motivation.render(result))
    # Paper: block-scope threadfence is 21x faster than device scope.
    assert 15.0 < result.ratio < 21.5
