"""Microbenchmarks of the detector itself (real wall-clock this time).

Unlike the table/figure benchmarks — which *model* GPU time — these
measure the reproduction's own Python throughput: events per second
through the detector pipeline, and the cost of individual subsystems.
Useful for keeping the simulator usable as it grows.
"""

from repro.core import IGuard
from repro.core.config import IGuardConfig
from repro.core.metadata import MetadataEntry, MetadataTable
from repro.gpu.arch import TEST_GPU
from repro.gpu.device import Device
from repro.gpu.instructions import atomic_add, load, store, syncthreads


def _detection_workload(config=None):
    device = Device(TEST_GPU)
    detector = device.add_tool(IGuard(config) if config else IGuard())
    data = device.alloc("data", 64, init=0)
    counter = device.alloc("counter", 1, init=0)

    def kern(ctx, data, counter):
        for r in range(8):
            v = yield load(data, ctx.tid)
            yield store(data, ctx.tid, v + r)
            yield syncthreads()
            yield atomic_add(counter, 0, 1)

    device.launch(kern, 2, 16, args=(data, counter), seed=1)
    return detector


def test_detector_event_pipeline(benchmark):
    detector = benchmark(_detection_workload)
    assert detector.race_count == 0


def test_detector_without_coalescing(benchmark):
    config = IGuardConfig(coalescing=False, dynamic_backoff=False)
    detector = benchmark(_detection_workload, config)
    assert detector.race_count == 0


def test_metadata_pack_unpack(benchmark):
    def pack_many():
        entry = MetadataEntry()
        for i in range(500):
            entry.set_accessor(tag=i, warp_id=i, lane=i % 32, dev_fence=i,
                               blk_fence=i, blk_bar=i, warp_bar=i)
            entry.set_writer(warp_id=i, lane=i % 32, dev_fence=i, blk_fence=i,
                             blk_bar=i, warp_bar=i, locks=i)
            view = entry.last_accessor
        return view

    view = benchmark(pack_many)
    assert view.lane == 499 % 32


def test_metadata_table_lookup(benchmark):
    table = MetadataTable()

    def lookups():
        for address in range(0x1000, 0x1000 + 4 * 500, 4):
            table.lookup(address)
        return len(table)

    count = benchmark(lookups)
    assert count == 500


def test_simulator_native_throughput(benchmark):
    """Raw simulator speed without any detector attached."""

    def run_native():
        device = Device(TEST_GPU)
        data = device.alloc("data", 64, init=0)

        def kern(ctx, data):
            for r in range(16):
                v = yield load(data, ctx.tid)
                yield store(data, ctx.tid, v + r)

        run = device.launch(kern, 2, 16, args=(data,), seed=1)
        return run.instructions

    instructions = benchmark(run_native)
    assert instructions == 2 * 16 * 32
