"""Benchmark: regenerate Figure 11 (overheads, iGUARD vs Barracuda)."""

from repro.experiments import figure11

from benchmarks.conftest import run_once


def test_figure11(benchmark):
    panels = run_once(benchmark, figure11.run)
    print()
    print(figure11.render(panels))
    # Shape: iGUARD stays single-digit-ish on average; Barracuda is an
    # order of magnitude worse where it runs at all (paper: 4.2x vs 61x
    # on panel b, 15x headline speedup).
    assert panels["b"].iguard_mean() < 12.0
    assert panels["b"].barracuda_mean() > 3 * panels["b"].iguard_mean()
    assert panels["b"].speedup_over_barracuda() > 5.0
    # Panel (a): Barracuda cannot run most racy suites.
    unsupported = sum(
        b.barracuda_status == "unsupported" for b in panels["a"].bars
    )
    assert unsupported >= 15
